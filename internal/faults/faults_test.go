package faults

import (
	"reflect"
	"strings"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func testLink(name string) (*sim.Engine, *fabric.Link) {
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	cfg := numa.Config{
		Name: "m", Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
	}
	ca, cb := cfg, cfg
	ca.Name, cb.Name = "A", "B"
	ha := host.New("A", numa.MustNew(s, ca))
	hb := host.New("B", numa.MustNew(s, cb))
	l := fabric.Connect(s, fabric.Config{Name: name, Rate: units.FromGbps(40), RTT: 0.166e-3},
		ha, ha.M.Node(0), hb, hb.M.Node(0))
	return eng, l
}

func TestApplyDrivesLinkTransitions(t *testing.T) {
	eng, l := testLink("roce")
	p := &Plan{}
	p.FailWindow(l, 1, 2)
	p.DegradeWindow(l, 5, 1, 0.25)
	p.Burst(l, 7)
	p.Apply(eng)

	var got []string
	check := func(at sim.Time, want float64) {
		eng.At(at, func() {
			if l.Fraction() != want {
				t.Errorf("t=%v fraction = %v, want %v", at, l.Fraction(), want)
			}
			got = append(got, "checked")
		})
	}
	check(1.5, 0)    // dark during outage
	check(3.5, 1)    // repaired
	check(5.5, 0.25) // degraded
	check(6.5, 1)    // degradation cleared
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("ran %d checks, want 4", len(got))
	}
	if l.Fraction() != 1 {
		t.Fatalf("final fraction = %v, want 1", l.Fraction())
	}
}

func TestChaosDeterministic(t *testing.T) {
	cfg := ChaosConfig{
		Seed: 42, Horizon: 60, MeanBetween: 5, MeanOutage: 1,
		FlapWeight: 1, DegradeWeight: 1, BurstWeight: 1,
	}
	_, l := testLink("roce")
	a := Chaos(cfg, l)
	b := Chaos(cfg, l)
	if !reflect.DeepEqual(a.Events, b.Events) {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 43
	c := Chaos(cfg, l)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Empty() {
		t.Fatal("expected a non-empty plan over a 60s horizon with 5s mean interarrival")
	}
}

func TestChaosEndsHealthy(t *testing.T) {
	eng, l := testLink("roce")
	p := Chaos(ChaosConfig{
		Seed: 7, Horizon: 120, MeanBetween: 3, MeanOutage: 4,
		FlapWeight: 2, DegradeWeight: 1,
	}, l)
	p.Apply(eng)
	eng.Run()
	if l.Fraction() != 1 {
		t.Fatalf("post-chaos fraction = %v, want 1 (all windows repaired)", l.Fraction())
	}
}

func TestChaosRespectsGracePeriod(t *testing.T) {
	_, l := testLink("roce")
	p := Chaos(ChaosConfig{Seed: 1, Start: 10, Horizon: 50, MeanBetween: 2}, l)
	for _, ev := range p.Events {
		if ev.At < 10 {
			t.Fatalf("event at %v before grace period end 10", ev.At)
		}
		if ev.At > 60 {
			t.Fatalf("event at %v beyond horizon end 60", ev.At)
		}
	}
}

func TestPlanRendering(t *testing.T) {
	_, l := testLink("wan")
	p := &Plan{}
	p.DegradeWindow(l, 2, 1, 0.5)
	s := p.String()
	if !strings.Contains(s, "degrade") || !strings.Contains(s, "wan") {
		t.Fatalf("String() missing fields:\n%s", s)
	}
	md := p.MarkdownTable()
	if !strings.Contains(md, "| 2.0000 | degrade | link wan | 0.5 |") {
		t.Fatalf("markdown table malformed:\n%s", md)
	}
	p.KillHost(3, 4)
	p.KillController(1, 5)
	p.PartitionWindow([]int{2, 3}, 6, 2)
	md = p.MarkdownTable()
	for _, want := range []string{
		"| 4.0000 | host-fail | host 3 | — |",
		"| 5.0000 | ctrl-fail | shard 1 | — |",
		"| 6.0000 | partition | shards [2 3] | — |",
		"| 8.0000 | heal | control plane | — |",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown table missing %q:\n%s", want, md)
		}
	}
	empty := &Plan{}
	if !strings.Contains(empty.MarkdownTable(), "no faults") {
		t.Fatal("empty plan table should say so")
	}
}

// recordingSink collects cluster-scale fault deliveries in order.
type recordingSink struct{ got []string }

func (r *recordingSink) FailHost(id int)      { r.got = append(r.got, sinkEvent("fail-host", id)) }
func (r *recordingSink) RestoreHost(id int)   { r.got = append(r.got, sinkEvent("restore-host", id)) }
func (r *recordingSink) FailController(k int) { r.got = append(r.got, sinkEvent("fail-ctrl", k)) }
func (r *recordingSink) StartPartition(shards []int) {
	r.got = append(r.got, sinkEvent("partition", len(shards)))
}
func (r *recordingSink) HealPartition() { r.got = append(r.got, "heal") }
func (r *recordingSink) LimpHost(id int, factor float64) {
	r.got = append(r.got, sinkEvent("limp-host", id))
}

func sinkEvent(what string, n int) string { return what + ":" + string(rune('0'+n)) }

// TestApplyToDeliversClusterEvents: host/controller/partition events reach
// the sink at their scheduled times, interleaved correctly with link events.
func TestApplyToDeliversClusterEvents(t *testing.T) {
	eng, l := testLink("roce")
	p := &Plan{}
	p.HostOutage(2, 1, 3) // fail @1, restore @4
	p.FailWindow(l, 2, 1) // link fail @2, restore @3
	p.KillController(1, 5)
	p.PartitionWindow([]int{3}, 6, 2) // partition @6, heal @8
	sink := &recordingSink{}
	p.ApplyTo(eng, sink)
	eng.Run()
	want := []string{
		"fail-host:2", "restore-host:2", "fail-ctrl:1", "partition:1", "heal",
	}
	if !reflect.DeepEqual(sink.got, want) {
		t.Fatalf("sink deliveries = %v, want %v", sink.got, want)
	}
	if l.Fraction() != 1 {
		t.Fatal("link window not applied alongside cluster events")
	}
}

// TestApplyPanicsOnClusterEventsWithoutSink: a plan naming failure domains
// nobody models is a bug, not a silent no-op.
func TestApplyPanicsOnClusterEventsWithoutSink(t *testing.T) {
	eng, _ := testLink("roce")
	p := &Plan{}
	p.KillHost(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Apply with cluster events and no sink did not panic")
		}
	}()
	p.Apply(eng)
}

// TestPermanentFailNeverRestores: the plan ends with the link still dark,
// unlike every window helper.
func TestPermanentFailNeverRestores(t *testing.T) {
	eng, l := testLink("roce")
	p := &Plan{}
	p.PermanentFail(l, 2)
	p.Apply(eng)
	eng.Run()
	if !l.Failed() || l.Fraction() != 0 {
		t.Fatalf("permanent failure repaired itself: failed=%v fraction=%v",
			l.Failed(), l.Fraction())
	}
	for _, ev := range p.Events {
		if ev.Kind == LinkRestore {
			t.Fatal("PermanentFail scheduled a restore")
		}
	}
}

// TestCorruptDeliversEventWithoutCapacityChange: a corruption event
// reaches watchers but leaves the link running and error-free.
func TestCorruptDeliversEventWithoutCapacityChange(t *testing.T) {
	eng, l := testLink("roce")
	var got []fabric.EventKind
	l.Watch(func(ev fabric.Event) { got = append(got, ev.Kind) })
	p := &Plan{}
	p.Corrupt(l, 1)
	p.Apply(eng)
	eng.Run()
	if !reflect.DeepEqual(got, []fabric.EventKind{fabric.EventCorruption}) {
		t.Fatalf("events = %v, want one corruption", got)
	}
	if l.Fraction() != 1 || l.Failed() {
		t.Fatal("corruption must not touch capacity")
	}
	if !l.Send(64, func(sim.Time) {}) {
		t.Fatal("corruption must not drop control messages")
	}
}

// TestChaosCorruptWeight: with only CorruptWeight set, every drawn fault
// is a corruption, and the schedule stays deterministic per seed.
func TestChaosCorruptWeight(t *testing.T) {
	_, l := testLink("roce")
	p := Chaos(ChaosConfig{Seed: 3, Horizon: 60, MeanBetween: 2, CorruptWeight: 1}, l)
	if len(p.Events) == 0 {
		t.Fatal("no corruption events drawn")
	}
	for _, ev := range p.Events {
		if ev.Kind != Corrupt {
			t.Fatalf("kind = %v, want corrupt", ev.Kind)
		}
	}
	q := Chaos(ChaosConfig{Seed: 3, Horizon: 60, MeanBetween: 2, CorruptWeight: 1}, l)
	if !reflect.DeepEqual(p.Events, q.Events) {
		t.Fatal("same seed produced different corruption schedules")
	}
}
