package faults

import (
	"math"
	"strings"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/sim"
)

func wantInvalid(t *testing.T, p *Plan, frag string) {
	t.Helper()
	err := p.Validate()
	if err == nil {
		t.Fatalf("Validate accepted a contradictory plan (wanted error containing %q)", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("Validate error %q does not mention %q", err, frag)
	}
}

func wantValid(t *testing.T, p *Plan) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected a consistent plan: %v", err)
	}
}

func TestValidateAcceptsConsistentPlans(t *testing.T) {
	_, l := testLink("roce")
	p := &Plan{}
	wantValid(t, p) // empty
	p.FailWindow(l, 1, 2)
	p.FailWindow(l, 3, 1) // boundary-touching: restore @3, fail @3
	p.DegradeWindow(l, 5, 1, 0.5)
	p.SlowRailWindow(l, 7, 1, 0.7)
	p.HostOutage(2, 1, 3)
	p.LimpWindow(2, 5, 2, 0.3)
	p.KillHost(2, 8) // after the limp recovered
	p.PartitionWindow([]int{1}, 1, 2)
	p.PartitionWindow([]int{2}, 4, 2)
	wantValid(t, p)
}

func TestValidateRejectsOverlappingLinkOutages(t *testing.T) {
	_, l := testLink("roce")
	p := &Plan{}
	p.FailWindow(l, 1, 4)
	p.FailWindow(l, 2, 1) // second fail inside the first outage
	wantInvalid(t, p, "inside an outage window")
}

func TestValidateRejectsDegradeOnDarkLink(t *testing.T) {
	_, l := testLink("roce")
	p := &Plan{}
	p.FailWindow(l, 1, 4)
	p.DegradeWindow(l, 2, 1, 0.5)
	wantInvalid(t, p, "the link is dark")

	p2 := &Plan{}
	p2.PermanentFail(l, 1)
	p2.SlowRail(l, 3, 0.7) // gray-sagging a dead fiber
	wantInvalid(t, p2, "the link is dark")
}

// TestValidateRejectsKillInsideLimpWindow is the issue's canonical case:
// crash-stopping a host whose limp window still expects to recover.
func TestValidateRejectsKillInsideLimpWindow(t *testing.T) {
	p := &Plan{}
	p.LimpWindow(3, 1, 10, 0.3)
	p.KillHost(3, 5)
	wantInvalid(t, p, "inside a limp window")

	// The other host is untouched by the limp — killing it is fine.
	p2 := &Plan{}
	p2.LimpWindow(3, 1, 10, 0.3)
	p2.KillHost(4, 5)
	wantValid(t, p2)
}

func TestValidateRejectsLimpOnDeadHost(t *testing.T) {
	p := &Plan{}
	p.KillHost(3, 1)
	p.LimpWindow(3, 5, 2, 0.3)
	wantInvalid(t, p, "the host is down")
}

func TestValidateRejectsOverlappingHostWindows(t *testing.T) {
	p := &Plan{}
	p.HostOutage(1, 1, 5)
	p.HostOutage(1, 3, 1)
	wantInvalid(t, p, "inside an outage window")

	p2 := &Plan{}
	p2.LimpWindow(1, 1, 5, 0.5)
	p2.LimpWindow(1, 3, 1, 0.3)
	wantInvalid(t, p2, "inside a limp window")
}

func TestValidateRejectsNestedPartitions(t *testing.T) {
	p := &Plan{}
	p.PartitionWindow([]int{1, 2}, 1, 5)
	p.PartitionWindow([]int{3}, 3, 1)
	wantInvalid(t, p, "still open")
}

func TestValidateIgnoresInsertionOrder(t *testing.T) {
	_, l := testLink("roce")
	p := &Plan{}
	// Inserted out of time order; Validate must sort before pairing.
	p.Add(Event{At: 2, Kind: LinkRestore, Link: l})
	p.Add(Event{At: 1, Kind: LinkFail, Link: l})
	wantValid(t, p)
}

// TestGrayInjectionIsSilent pins the defining property of the gray kinds:
// capacity/latency change, but no watcher hears about it.
func TestGrayInjectionIsSilent(t *testing.T) {
	eng, l := testLink("roce")
	events := 0
	l.Watch(func(fabric.Event) { events++ })
	p := &Plan{}
	p.SlowRailWindow(l, 1, 2, 0.7)
	p.JitterWindow(l, 1, 2, 8)
	p.SilentLossWindow(l, 1, 2, 5)
	wantValid(t, p)
	p.Apply(eng)
	nominal := l.RTT()
	eng.At(2, func() {
		if got := l.GraySag(); math.Abs(got-0.3) > 1e-12 {
			t.Errorf("gray sag not applied: %g", got)
		}
		if got := l.LatencyFactor(); got != 8 {
			t.Errorf("latency inflation not applied: %g", got)
		}
		if got := l.RTT(); got != sim.Duration(8*float64(nominal)) {
			t.Errorf("RTT not inflated: %v vs nominal %v", got, nominal)
		}
		if got := l.SilentLossEvery(); got != 5 {
			t.Errorf("silent loss not applied: %d", got)
		}
		if l.Fraction() != 1 {
			t.Errorf("gray sag leaked into Fraction: %g", l.Fraction())
		}
	})
	eng.Run()
	if events != 0 {
		t.Fatalf("gray injection notified %d watcher events; gray failures must be silent", events)
	}
	if l.GraySag() != 1 || l.LatencyFactor() != 1 || l.SilentLossEvery() != 0 {
		t.Fatalf("gray windows did not recover: sag=%g lat=%g loss=%d",
			l.GraySag(), l.LatencyFactor(), l.SilentLossEvery())
	}
}

// TestSilentLossDropsDeterministically: every 3rd Send vanishes, counted,
// and the cadence is a counter — two runs drop the same messages.
func TestSilentLossDropsDeterministically(t *testing.T) {
	_, l := testLink("roce")
	l.SetSilentLoss(3)
	delivered := 0
	for i := 0; i < 9; i++ {
		if l.Send(64, func(sim.Time) {}) {
			delivered++
		}
	}
	if delivered != 6 {
		t.Fatalf("delivered %d of 9 with every=3, want 6", delivered)
	}
	if l.SilentDrops != 3 {
		t.Fatalf("SilentDrops = %d, want 3", l.SilentDrops)
	}
	if l.Drops != 0 {
		t.Fatalf("silent losses leaked into the dark-link Drops counter: %d", l.Drops)
	}
}
