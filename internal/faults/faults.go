// Package faults is a deterministic fault-injection plane over the
// simulated fabric. A Plan is an explicit, seeded schedule of link
// transitions — flaps (fail/restore), partial degradation, and RDMA error
// bursts — applied at exact virtual times. Because the simulation is
// single-threaded and the schedule is data, the same plan over the same
// topology reproduces a bit-identical event trace: chaos experiments are
// replayable.
//
// Beyond link faults, a plan can schedule cluster-scale failure domains:
// crash-stop host failures (with optional cold restart), shard-controller
// crashes, and control-plane partitions. Those events have no fabric.Link
// target; they are delivered to a Sink — implemented by internal/cluster —
// through ApplyTo, keeping the whole failure schedule in one replayable
// data structure.
//
// Two ways to build a plan: compose windows by hand (FailWindow,
// DegradeWindow, Burst, HostOutage, KillController, PartitionWindow) for
// acceptance tests, or draw a link-fault schedule from a seeded generator
// (Chaos) for sweep experiments.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"e2edt/internal/fabric"
	"e2edt/internal/sim"
)

// Kind classifies one scheduled fault action.
type Kind int

const (
	// LinkFail takes the link dark (capacity → 0, control messages drop).
	LinkFail Kind = iota
	// LinkRestore repairs the link (capacity returns, scaled by any
	// standing degradation).
	LinkRestore
	// LinkDegrade scales the link to Fraction × rate without going dark.
	LinkDegrade
	// ErrorBurst raises RDMA error completions without touching capacity.
	ErrorBurst
	// Corrupt injects a silent bit flip: the block in flight arrives wrong
	// with no link-level or RDMA-level indication. Only an end-to-end
	// integrity check can catch it.
	Corrupt
	// HostFail crash-stops a simulated cluster host: its NICs go dark, its
	// staging memory is lost, and it stops heartbeating. Delivered to a
	// Sink (cluster events have no Link target).
	HostFail
	// HostRestore cold-restarts a crashed host: NICs come back, but
	// anything staged in its memory before the crash is gone.
	HostRestore
	// CtrlFail crash-stops a control-plane shard controller. Crash-stop is
	// permanent for controllers: ownership fails over to a successor.
	CtrlFail
	// PartitionStart severs control-plane traffic between the listed
	// shards and the rest of the control plane. Data-plane links are
	// untouched — the partition isolates coordination, not transfers.
	PartitionStart
	// PartitionHeal reconnects the control plane.
	PartitionHeal
	// GraySlow injects a hidden rate sag on a link: capacity drops to
	// Fraction × rate with no watcher notification and no flap — the rail
	// limps, absolute health probes keep passing. Fraction 1 clears it.
	GraySlow
	// GrayJitter inflates a link's latency distribution by Fraction (a
	// factor >= 1) with no notification; Fraction 1 clears it. Credit- and
	// window-limited protocols sag, capacity-limited flows do not.
	GrayJitter
	// SilentLoss drops every Every-th control message on a link — a loss
	// rate deliberately below the consecutive-miss threshold binary death
	// detectors need. Every 0 clears it.
	SilentLoss
	// LimpHost inflates a cluster host's CPU/memory service time: every
	// core runs at Fraction × speed. The host stays alive, heartbeats and
	// all — it just limps. Fraction 1 clears it. Delivered to a Sink.
	LimpHost
)

// String names the kind for traces and report tables.
func (k Kind) String() string {
	switch k {
	case LinkFail:
		return "fail"
	case LinkRestore:
		return "restore"
	case LinkDegrade:
		return "degrade"
	case Corrupt:
		return "corrupt"
	case HostFail:
		return "host-fail"
	case HostRestore:
		return "host-restore"
	case CtrlFail:
		return "ctrl-fail"
	case PartitionStart:
		return "partition"
	case PartitionHeal:
		return "heal"
	case GraySlow:
		return "gray-slow"
	case GrayJitter:
		return "gray-jitter"
	case SilentLoss:
		return "silent-loss"
	case LimpHost:
		return "limp-host"
	default:
		return "error-burst"
	}
}

// Event is one scheduled fault action.
type Event struct {
	// At is the virtual time the action fires.
	At sim.Time
	// Kind selects the action.
	Kind Kind
	// Link is the target link (link kinds only; nil for cluster kinds).
	Link *fabric.Link
	// Fraction is the capacity fraction for LinkDegrade (ignored
	// otherwise); Degrade(1) clears a standing degradation.
	Fraction float64
	// Host is the target host id (HostFail/HostRestore/LimpHost) or shard
	// id (CtrlFail).
	Host int
	// Shards lists the shard ids severed from the rest by PartitionStart.
	Shards []int
	// Every is the SilentLoss cadence: every Every-th control message is
	// dropped (0 clears the injection).
	Every int
}

// clusterKind reports whether the event needs a Sink rather than a Link.
func (ev Event) clusterKind() bool {
	switch ev.Kind {
	case HostFail, HostRestore, CtrlFail, PartitionStart, PartitionHeal, LimpHost:
		return true
	}
	return false
}

// target names the event's subject for logs and tables.
func (ev Event) target() string {
	switch ev.Kind {
	case HostFail, HostRestore, LimpHost:
		return fmt.Sprintf("host %d", ev.Host)
	case CtrlFail:
		return fmt.Sprintf("shard %d", ev.Host)
	case PartitionStart:
		return fmt.Sprintf("shards %v", ev.Shards)
	case PartitionHeal:
		return "control plane"
	}
	return "link " + ev.Link.Cfg.Name
}

// Sink receives cluster-scale fault events from ApplyTo. It is implemented
// by internal/cluster; the indirection keeps this package free of a cluster
// dependency while one Plan carries the whole failure schedule.
type Sink interface {
	// FailHost crash-stops host id.
	FailHost(id int)
	// RestoreHost cold-restarts a crashed host.
	RestoreHost(id int)
	// FailController crash-stops shard controller k (permanent).
	FailController(k int)
	// StartPartition severs control traffic between shards and the rest.
	StartPartition(shards []int)
	// HealPartition reconnects the control plane.
	HealPartition()
	// LimpHost inflates host id's service time: cores run at factor ×
	// speed (factor 1 restores full speed). The host stays alive.
	LimpHost(id int, factor float64)
}

// Plan is an ordered fault schedule.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// sortEvents orders events by time, breaking ties by insertion order
// (stable), so Apply schedules deterministically.
func (p *Plan) sortEvents() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
}

// Add appends an event.
func (p *Plan) Add(ev Event) { p.Events = append(p.Events, ev) }

// FailWindow schedules a link outage [from, from+outage).
func (p *Plan) FailWindow(l *fabric.Link, from sim.Time, outage sim.Duration) {
	p.Add(Event{At: from, Kind: LinkFail, Link: l})
	p.Add(Event{At: from + sim.Time(outage), Kind: LinkRestore, Link: l})
}

// DegradeWindow schedules partial degradation to fraction×rate over
// [from, from+window), restoring full capacity afterwards.
func (p *Plan) DegradeWindow(l *fabric.Link, from sim.Time, window sim.Duration, fraction float64) {
	p.Add(Event{At: from, Kind: LinkDegrade, Link: l, Fraction: fraction})
	p.Add(Event{At: from + sim.Time(window), Kind: LinkDegrade, Link: l, Fraction: 1})
}

// Burst schedules one RDMA error burst.
func (p *Plan) Burst(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: ErrorBurst, Link: l})
}

// Corrupt schedules one silent bit flip.
func (p *Plan) Corrupt(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: Corrupt, Link: l})
}

// PermanentFail schedules a link failure that is never repaired — a died
// transceiver, a cut fiber. Every window helper in this package restores
// the link before the horizon ends; this one deliberately does not, so
// failover policy (stream migration off the dead rail) can be tested
// against the failure mode where waiting it out never works.
func (p *Plan) PermanentFail(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: LinkFail, Link: l})
}

// KillHost schedules a crash-stop failure of host id that is never
// repaired within the plan.
func (p *Plan) KillHost(id int, at sim.Time) {
	p.Add(Event{At: at, Kind: HostFail, Host: id})
}

// HostOutage schedules a crash-stop failure of host id at from, followed by
// a cold restart after down.
func (p *Plan) HostOutage(id int, from sim.Time, down sim.Duration) {
	p.Add(Event{At: from, Kind: HostFail, Host: id})
	p.Add(Event{At: from + sim.Time(down), Kind: HostRestore, Host: id})
}

// KillController schedules a permanent crash-stop of shard controller k.
func (p *Plan) KillController(k int, at sim.Time) {
	p.Add(Event{At: at, Kind: CtrlFail, Host: k})
}

// PartitionWindow severs control-plane traffic between the listed shards
// and the rest over [from, from+window), healing afterwards.
func (p *Plan) PartitionWindow(shards []int, from sim.Time, window sim.Duration) {
	p.Add(Event{At: from, Kind: PartitionStart, Shards: shards})
	p.Add(Event{At: from + sim.Time(window), Kind: PartitionHeal})
}

// SlowRail schedules a permanent gray rate sag: from at onwards the link
// delivers only (1-severity) × rate, with no flap and no notification —
// the degraded-but-alive failure mode binary detectors cannot see.
// severity must be in (0, 1).
func (p *Plan) SlowRail(l *fabric.Link, at sim.Time, severity float64) {
	if severity <= 0 || severity >= 1 {
		panic(fmt.Sprintf("faults: SlowRail severity %v outside (0, 1)", severity))
	}
	p.Add(Event{At: at, Kind: GraySlow, Link: l, Fraction: surviving(severity)})
}

// surviving converts a sag severity into the surviving-capacity fraction,
// rounded so 1-0.7 reads 0.3 (not 0.30000000000000004) in echoed schedules
// and trace lines.
func surviving(severity float64) float64 {
	return math.Round((1-severity)*1e9) / 1e9
}

// SlowRailWindow schedules a gray rate sag of the given severity over
// [from, from+window), silently recovering afterwards.
func (p *Plan) SlowRailWindow(l *fabric.Link, from sim.Time, window sim.Duration, severity float64) {
	if severity <= 0 || severity >= 1 {
		panic(fmt.Sprintf("faults: SlowRailWindow severity %v outside (0, 1)", severity))
	}
	p.Add(Event{At: from, Kind: GraySlow, Link: l, Fraction: surviving(severity)})
	p.Add(Event{At: from + sim.Time(window), Kind: GraySlow, Link: l, Fraction: 1})
}

// JitterWindow schedules gray latency inflation by factor (>= 1) over
// [from, from+window), silently recovering afterwards.
func (p *Plan) JitterWindow(l *fabric.Link, from sim.Time, window sim.Duration, factor float64) {
	if factor < 1 {
		panic(fmt.Sprintf("faults: JitterWindow factor %v below 1", factor))
	}
	p.Add(Event{At: from, Kind: GrayJitter, Link: l, Fraction: factor})
	p.Add(Event{At: from + sim.Time(window), Kind: GrayJitter, Link: l, Fraction: 1})
}

// SilentLossWindow schedules a sub-threshold loss regime — every every-th
// control message dropped — over [from, from+window).
func (p *Plan) SilentLossWindow(l *fabric.Link, from sim.Time, window sim.Duration, every int) {
	if every < 2 {
		panic(fmt.Sprintf("faults: SilentLossWindow every %d must be >= 2", every))
	}
	p.Add(Event{At: from, Kind: SilentLoss, Link: l, Every: every})
	p.Add(Event{At: from + sim.Time(window), Kind: SilentLoss, Link: l, Every: 0})
}

// LimpWindow schedules CPU/memory service-time inflation on host id over
// [from, from+window): cores run at factor × speed, then recover. factor
// must be in (0, 1).
func (p *Plan) LimpWindow(id int, from sim.Time, window sim.Duration, factor float64) {
	if factor <= 0 || factor >= 1 {
		panic(fmt.Sprintf("faults: LimpWindow factor %v outside (0, 1)", factor))
	}
	p.Add(Event{At: from, Kind: LimpHost, Host: id, Fraction: factor})
	p.Add(Event{At: from + sim.Time(window), Kind: LimpHost, Host: id, Fraction: 1})
}

// Apply schedules every event on the engine. Call before Run; events in
// the past panic (the engine refuses to schedule before now). Plans that
// contain cluster-scale events (host/controller/partition) need ApplyTo.
func (p *Plan) Apply(eng *sim.Engine) { p.ApplyTo(eng, nil) }

// ApplyTo schedules every event on the engine, delivering cluster-scale
// events to sink. A plan with cluster events and a nil sink panics: the
// schedule names failure domains nobody models.
func (p *Plan) ApplyTo(eng *sim.Engine, sink Sink) {
	if p.Empty() {
		return
	}
	p.sortEvents()
	for _, ev := range p.Events {
		ev := ev
		if ev.clusterKind() && sink == nil {
			panic(fmt.Sprintf("faults: plan schedules %s for %s but no Sink was given; use ApplyTo", ev.Kind, ev.target()))
		}
		eng.At(ev.At, func() {
			switch ev.Kind {
			case LinkDegrade, GraySlow, GrayJitter, LimpHost:
				eng.Tracef("faults", "%s %s (fraction=%g)", ev.Kind, ev.target(), ev.Fraction)
			case SilentLoss:
				eng.Tracef("faults", "%s %s (every=%d)", ev.Kind, ev.target(), ev.Every)
			default:
				eng.Tracef("faults", "%s %s", ev.Kind, ev.target())
			}
			switch ev.Kind {
			case LinkFail:
				ev.Link.Fail()
			case LinkRestore:
				ev.Link.Restore()
			case LinkDegrade:
				ev.Link.Degrade(ev.Fraction)
			case ErrorBurst:
				ev.Link.InjectErrorBurst()
			case Corrupt:
				ev.Link.InjectCorruption()
			case GraySlow:
				ev.Link.GrayDegrade(ev.Fraction)
			case GrayJitter:
				ev.Link.InflateLatency(ev.Fraction)
			case SilentLoss:
				ev.Link.SetSilentLoss(ev.Every)
			case HostFail:
				sink.FailHost(ev.Host)
			case HostRestore:
				sink.RestoreHost(ev.Host)
			case CtrlFail:
				sink.FailController(ev.Host)
			case PartitionStart:
				sink.StartPartition(ev.Shards)
			case PartitionHeal:
				sink.HealPartition()
			case LimpHost:
				sink.LimpHost(ev.Host, ev.Fraction)
			}
		})
	}
}

// String renders the schedule as a fixed-width table for logs.
func (p *Plan) String() string {
	if p.Empty() {
		return "(no faults scheduled)"
	}
	var b strings.Builder
	for _, ev := range p.Events {
		fmt.Fprintf(&b, "%12.4fs  %-12s  %s", float64(ev.At), ev.Kind, ev.target())
		switch ev.Kind {
		case LinkDegrade, GraySlow, GrayJitter, LimpHost:
			fmt.Fprintf(&b, "  fraction=%g", ev.Fraction)
		case SilentLoss:
			fmt.Fprintf(&b, "  every=%d", ev.Every)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarkdownTable renders the schedule as a markdown table for reports.
func (p *Plan) MarkdownTable() string {
	if p.Empty() {
		return "_no faults scheduled_\n"
	}
	var b strings.Builder
	b.WriteString("| t (s) | action | target | fraction |\n|---|---|---|---|\n")
	for _, ev := range p.Events {
		frac := "—"
		switch ev.Kind {
		case LinkDegrade, GraySlow, GrayJitter, LimpHost:
			frac = fmt.Sprintf("%g", ev.Fraction)
		case SilentLoss:
			frac = fmt.Sprintf("every %d", ev.Every)
		}
		fmt.Fprintf(&b, "| %.4f | %s | %s | %s |\n", float64(ev.At), ev.Kind, ev.target(), frac)
	}
	return b.String()
}

// ChaosConfig parameterizes the seeded schedule generator.
type ChaosConfig struct {
	// Seed drives the generator; the same seed over the same links yields
	// the same plan.
	Seed int64
	// Horizon bounds fault start times to [Start, Start+Horizon).
	Horizon sim.Duration
	// Start offsets the first possible fault (grace period for handshakes).
	Start sim.Time
	// MeanBetween is the mean exponential interarrival between faults.
	MeanBetween sim.Duration
	// MeanOutage is the mean duration of a fail or degrade window.
	MeanOutage sim.Duration
	// DegradeFraction is the capacity fraction used for degradation
	// windows (default 0.5 when zero).
	DegradeFraction float64
	// Weights select the fault mix: relative odds of a flap, a degrade
	// window, an error burst, and a silent corruption. All-zero means
	// flaps only.
	FlapWeight, DegradeWeight, BurstWeight, CorruptWeight float64
}

// Chaos draws a fault schedule from cfg over the given links. Each fault
// picks a link uniformly; interarrival times and window lengths are
// exponential. Windows are clamped so every injected outage is repaired
// within the horizon (the plan always ends with every link healthy).
func Chaos(cfg ChaosConfig, links ...*fabric.Link) *Plan {
	if len(links) == 0 {
		panic("faults: Chaos needs at least one link")
	}
	if cfg.MeanBetween <= 0 {
		panic("faults: ChaosConfig.MeanBetween must be positive")
	}
	if cfg.Horizon <= 0 {
		panic("faults: ChaosConfig.Horizon must be positive")
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = cfg.MeanBetween / 4
	}
	if cfg.DegradeFraction <= 0 || cfg.DegradeFraction > 1 {
		cfg.DegradeFraction = 0.5
	}
	wSum := cfg.FlapWeight + cfg.DegradeWeight + cfg.BurstWeight + cfg.CorruptWeight
	if wSum <= 0 {
		cfg.FlapWeight, wSum = 1, 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Plan{}
	end := cfg.Start + sim.Time(cfg.Horizon)
	at := cfg.Start
	for {
		at += sim.Time(rng.ExpFloat64() * float64(cfg.MeanBetween))
		if at >= end {
			break
		}
		l := links[rng.Intn(len(links))]
		window := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanOutage))
		if minW := sim.Duration(float64(cfg.MeanOutage) / 10); window < minW {
			window = minW
		}
		if at+sim.Time(window) > end {
			window = sim.Duration(end - at)
		}
		switch pick := rng.Float64() * wSum; {
		case pick < cfg.FlapWeight:
			p.FailWindow(l, at, window)
		case pick < cfg.FlapWeight+cfg.DegradeWeight:
			p.DegradeWindow(l, at, window, cfg.DegradeFraction)
		case pick < cfg.FlapWeight+cfg.DegradeWeight+cfg.BurstWeight:
			p.Burst(l, at)
		default:
			p.Corrupt(l, at)
		}
	}
	p.sortEvents()
	return p
}
