// Package faults is a deterministic fault-injection plane over the
// simulated fabric. A Plan is an explicit, seeded schedule of link
// transitions — flaps (fail/restore), partial degradation, and RDMA error
// bursts — applied at exact virtual times. Because the simulation is
// single-threaded and the schedule is data, the same plan over the same
// topology reproduces a bit-identical event trace: chaos experiments are
// replayable.
//
// Two ways to build a plan: compose windows by hand (FailWindow,
// DegradeWindow, Burst) for acceptance tests, or draw a whole schedule
// from a seeded generator (Chaos) for sweep experiments.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"e2edt/internal/fabric"
	"e2edt/internal/sim"
)

// Kind classifies one scheduled fault action.
type Kind int

const (
	// LinkFail takes the link dark (capacity → 0, control messages drop).
	LinkFail Kind = iota
	// LinkRestore repairs the link (capacity returns, scaled by any
	// standing degradation).
	LinkRestore
	// LinkDegrade scales the link to Fraction × rate without going dark.
	LinkDegrade
	// ErrorBurst raises RDMA error completions without touching capacity.
	ErrorBurst
	// Corrupt injects a silent bit flip: the block in flight arrives wrong
	// with no link-level or RDMA-level indication. Only an end-to-end
	// integrity check can catch it.
	Corrupt
)

// String names the kind for traces and report tables.
func (k Kind) String() string {
	switch k {
	case LinkFail:
		return "fail"
	case LinkRestore:
		return "restore"
	case LinkDegrade:
		return "degrade"
	case Corrupt:
		return "corrupt"
	default:
		return "error-burst"
	}
}

// Event is one scheduled fault action.
type Event struct {
	// At is the virtual time the action fires.
	At sim.Time
	// Kind selects the action.
	Kind Kind
	// Link is the target link.
	Link *fabric.Link
	// Fraction is the capacity fraction for LinkDegrade (ignored
	// otherwise); Degrade(1) clears a standing degradation.
	Fraction float64
}

// Plan is an ordered fault schedule.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// sortEvents orders events by time, breaking ties by insertion order
// (stable), so Apply schedules deterministically.
func (p *Plan) sortEvents() {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
}

// Add appends an event.
func (p *Plan) Add(ev Event) { p.Events = append(p.Events, ev) }

// FailWindow schedules a link outage [from, from+outage).
func (p *Plan) FailWindow(l *fabric.Link, from sim.Time, outage sim.Duration) {
	p.Add(Event{At: from, Kind: LinkFail, Link: l})
	p.Add(Event{At: from + sim.Time(outage), Kind: LinkRestore, Link: l})
}

// DegradeWindow schedules partial degradation to fraction×rate over
// [from, from+window), restoring full capacity afterwards.
func (p *Plan) DegradeWindow(l *fabric.Link, from sim.Time, window sim.Duration, fraction float64) {
	p.Add(Event{At: from, Kind: LinkDegrade, Link: l, Fraction: fraction})
	p.Add(Event{At: from + sim.Time(window), Kind: LinkDegrade, Link: l, Fraction: 1})
}

// Burst schedules one RDMA error burst.
func (p *Plan) Burst(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: ErrorBurst, Link: l})
}

// Corrupt schedules one silent bit flip.
func (p *Plan) Corrupt(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: Corrupt, Link: l})
}

// PermanentFail schedules a link failure that is never repaired — a died
// transceiver, a cut fiber. Every window helper in this package restores
// the link before the horizon ends; this one deliberately does not, so
// failover policy (stream migration off the dead rail) can be tested
// against the failure mode where waiting it out never works.
func (p *Plan) PermanentFail(l *fabric.Link, at sim.Time) {
	p.Add(Event{At: at, Kind: LinkFail, Link: l})
}

// Apply schedules every event on the engine. Call before Run; events in
// the past panic (the engine refuses to schedule before now).
func (p *Plan) Apply(eng *sim.Engine) {
	if p.Empty() {
		return
	}
	p.sortEvents()
	for _, ev := range p.Events {
		ev := ev
		eng.At(ev.At, func() {
			eng.Tracef("faults", "%s link %s (fraction=%g)", ev.Kind, ev.Link.Cfg.Name, ev.Fraction)
			switch ev.Kind {
			case LinkFail:
				ev.Link.Fail()
			case LinkRestore:
				ev.Link.Restore()
			case LinkDegrade:
				ev.Link.Degrade(ev.Fraction)
			case ErrorBurst:
				ev.Link.InjectErrorBurst()
			case Corrupt:
				ev.Link.InjectCorruption()
			}
		})
	}
}

// String renders the schedule as a fixed-width table for logs.
func (p *Plan) String() string {
	if p.Empty() {
		return "(no faults scheduled)"
	}
	var b strings.Builder
	for _, ev := range p.Events {
		fmt.Fprintf(&b, "%12.4fs  %-11s  %s", float64(ev.At), ev.Kind, ev.Link.Cfg.Name)
		if ev.Kind == LinkDegrade {
			fmt.Fprintf(&b, "  fraction=%g", ev.Fraction)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MarkdownTable renders the schedule as a markdown table for reports.
func (p *Plan) MarkdownTable() string {
	if p.Empty() {
		return "_no faults scheduled_\n"
	}
	var b strings.Builder
	b.WriteString("| t (s) | action | link | fraction |\n|---|---|---|---|\n")
	for _, ev := range p.Events {
		frac := "—"
		if ev.Kind == LinkDegrade {
			frac = fmt.Sprintf("%g", ev.Fraction)
		}
		fmt.Fprintf(&b, "| %.4f | %s | %s | %s |\n", float64(ev.At), ev.Kind, ev.Link.Cfg.Name, frac)
	}
	return b.String()
}

// ChaosConfig parameterizes the seeded schedule generator.
type ChaosConfig struct {
	// Seed drives the generator; the same seed over the same links yields
	// the same plan.
	Seed int64
	// Horizon bounds fault start times to [Start, Start+Horizon).
	Horizon sim.Duration
	// Start offsets the first possible fault (grace period for handshakes).
	Start sim.Time
	// MeanBetween is the mean exponential interarrival between faults.
	MeanBetween sim.Duration
	// MeanOutage is the mean duration of a fail or degrade window.
	MeanOutage sim.Duration
	// DegradeFraction is the capacity fraction used for degradation
	// windows (default 0.5 when zero).
	DegradeFraction float64
	// Weights select the fault mix: relative odds of a flap, a degrade
	// window, an error burst, and a silent corruption. All-zero means
	// flaps only.
	FlapWeight, DegradeWeight, BurstWeight, CorruptWeight float64
}

// Chaos draws a fault schedule from cfg over the given links. Each fault
// picks a link uniformly; interarrival times and window lengths are
// exponential. Windows are clamped so every injected outage is repaired
// within the horizon (the plan always ends with every link healthy).
func Chaos(cfg ChaosConfig, links ...*fabric.Link) *Plan {
	if len(links) == 0 {
		panic("faults: Chaos needs at least one link")
	}
	if cfg.MeanBetween <= 0 {
		panic("faults: ChaosConfig.MeanBetween must be positive")
	}
	if cfg.Horizon <= 0 {
		panic("faults: ChaosConfig.Horizon must be positive")
	}
	if cfg.MeanOutage <= 0 {
		cfg.MeanOutage = cfg.MeanBetween / 4
	}
	if cfg.DegradeFraction <= 0 || cfg.DegradeFraction > 1 {
		cfg.DegradeFraction = 0.5
	}
	wSum := cfg.FlapWeight + cfg.DegradeWeight + cfg.BurstWeight + cfg.CorruptWeight
	if wSum <= 0 {
		cfg.FlapWeight, wSum = 1, 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Plan{}
	end := cfg.Start + sim.Time(cfg.Horizon)
	at := cfg.Start
	for {
		at += sim.Time(rng.ExpFloat64() * float64(cfg.MeanBetween))
		if at >= end {
			break
		}
		l := links[rng.Intn(len(links))]
		window := sim.Duration(rng.ExpFloat64() * float64(cfg.MeanOutage))
		if minW := sim.Duration(float64(cfg.MeanOutage) / 10); window < minW {
			window = minW
		}
		if at+sim.Time(window) > end {
			window = sim.Duration(end - at)
		}
		switch pick := rng.Float64() * wSum; {
		case pick < cfg.FlapWeight:
			p.FailWindow(l, at, window)
		case pick < cfg.FlapWeight+cfg.DegradeWeight:
			p.DegradeWindow(l, at, window, cfg.DegradeFraction)
		case pick < cfg.FlapWeight+cfg.DegradeWeight+cfg.BurstWeight:
			p.Burst(l, at)
		default:
			p.Corrupt(l, at)
		}
	}
	p.sortEvents()
	return p
}
