// Package trace provides sinks for the simulation engine's trace events:
// a writer-backed logger with subsystem filtering, and a recording sink
// for tests and post-hoc inspection. Install with Engine.SetTracer.
//
// Tracing is strictly opt-in: with no tracer installed, subsystems pay a
// single nil check per potential event.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"e2edt/internal/sim"
)

// Logger writes one line per event: "[  1.234567s] subsys: message".
type Logger struct {
	W io.Writer
	// Subsystems, when non-empty, restricts output to the named
	// subsystems.
	Subsystems []string
	// Emitted counts lines written.
	Emitted uint64
}

// NewLogger returns a logger for w, optionally filtered to subsystems.
func NewLogger(w io.Writer, subsystems ...string) *Logger {
	return &Logger{W: w, Subsystems: subsystems}
}

var _ sim.Tracer = (*Logger)(nil)

// Event implements sim.Tracer.
func (l *Logger) Event(now sim.Time, subsys, msg string) {
	if len(l.Subsystems) > 0 {
		ok := false
		for _, s := range l.Subsystems {
			if s == subsys {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	fmt.Fprintf(l.W, "[%11.6fs] %s: %s\n", float64(now), subsys, msg)
	l.Emitted++
}

// Record is one captured event.
type Record struct {
	At     sim.Time
	Subsys string
	Msg    string
}

// Recorder captures events in memory (bounded by Cap when positive).
type Recorder struct {
	// Cap bounds retained events; 0 means unbounded. When full, the
	// oldest events are dropped.
	Cap     int
	Events  []Record
	Dropped uint64
}

var _ sim.Tracer = (*Recorder)(nil)

// Event implements sim.Tracer.
func (r *Recorder) Event(now sim.Time, subsys, msg string) {
	if r.Cap > 0 && len(r.Events) >= r.Cap {
		copy(r.Events, r.Events[1:])
		r.Events = r.Events[:len(r.Events)-1]
		r.Dropped++
	}
	r.Events = append(r.Events, Record{At: now, Subsys: subsys, Msg: msg})
}

// BySubsystem groups captured events.
func (r *Recorder) BySubsystem() map[string][]Record {
	out := make(map[string][]Record)
	for _, e := range r.Events {
		out[e.Subsys] = append(out[e.Subsys], e)
	}
	return out
}

// Summary renders per-subsystem event counts, sorted by name.
func (r *Recorder) Summary() string {
	counts := make(map[string]int)
	for _, e := range r.Events {
		counts[e.Subsys]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, counts[n]))
	}
	if r.Dropped > 0 {
		parts = append(parts, fmt.Sprintf("dropped=%d", r.Dropped))
	}
	return strings.Join(parts, " ")
}
