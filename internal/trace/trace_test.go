package trace

import (
	"strings"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/sim"
)

func TestLoggerWritesEvents(t *testing.T) {
	var buf strings.Builder
	eng := sim.NewEngine()
	eng.SetTracer(NewLogger(&buf))
	s := fluid.NewSim(eng)
	r := s.AddResource("link", 100)
	f := s.NewFlow("f", 50)
	f.Use(r, 1)
	s.Start(&fluid.Transfer{Flow: f, Remaining: 100})
	eng.Run()
	out := buf.String()
	if !strings.Contains(out, "fluid: start f") {
		t.Fatalf("missing start event:\n%s", out)
	}
	if !strings.Contains(out, "fluid: complete f transferred=100") {
		t.Fatalf("missing complete event:\n%s", out)
	}
	if !strings.Contains(out, "s] fluid:") {
		t.Fatalf("timestamp format wrong:\n%s", out)
	}
}

func TestLoggerSubsystemFilter(t *testing.T) {
	var buf strings.Builder
	l := NewLogger(&buf, "fabric")
	l.Event(1, "fluid", "hidden")
	l.Event(2, "fabric", "shown")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("filter leaked")
	}
	if !strings.Contains(out, "shown") {
		t.Fatal("filtered subsystem missing")
	}
	if l.Emitted != 1 {
		t.Fatalf("Emitted = %d", l.Emitted)
	}
}

func TestRecorderCapturesAndGroups(t *testing.T) {
	r := &Recorder{}
	r.Event(1, "a", "x")
	r.Event(2, "b", "y")
	r.Event(3, "a", "z")
	if len(r.Events) != 3 {
		t.Fatalf("events = %d", len(r.Events))
	}
	groups := r.BySubsystem()
	if len(groups["a"]) != 2 || len(groups["b"]) != 1 {
		t.Fatalf("groups wrong: %v", groups)
	}
	if r.Summary() != "a=2 b=1" {
		t.Fatalf("summary = %q", r.Summary())
	}
}

func TestRecorderCapDropsOldest(t *testing.T) {
	r := &Recorder{Cap: 2}
	r.Event(1, "s", "one")
	r.Event(2, "s", "two")
	r.Event(3, "s", "three")
	if len(r.Events) != 2 {
		t.Fatalf("events = %d, want cap 2", len(r.Events))
	}
	if r.Events[0].Msg != "two" || r.Events[1].Msg != "three" {
		t.Fatalf("wrong retention: %v", r.Events)
	}
	if r.Dropped != 1 {
		t.Fatalf("Dropped = %d", r.Dropped)
	}
	if !strings.Contains(r.Summary(), "dropped=1") {
		t.Fatal("summary missing drop count")
	}
}

func TestNoTracerIsFree(t *testing.T) {
	eng := sim.NewEngine()
	if eng.Tracing() {
		t.Fatal("fresh engine should not trace")
	}
	eng.Tracef("x", "nothing %d", 42) // must not panic
	eng.SetTracer(&Recorder{})
	if !eng.Tracing() {
		t.Fatal("tracer not installed")
	}
	eng.SetTracer(nil)
	if eng.Tracing() {
		t.Fatal("tracer not removed")
	}
}
