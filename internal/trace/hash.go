package trace

import (
	"crypto/sha256"
	"fmt"
	"hash"

	"e2edt/internal/sim"
)

// Hasher is a trace sink that folds every event into a running SHA-256
// instead of retaining it. Two runs are bit-identical iff their sums match,
// which is how cluster-scale scenarios (millions of events across a
// thousand hosts) verify deterministic replay without holding the trace in
// memory the way Recorder does.
type Hasher struct {
	h hash.Hash
	n uint64
}

// NewHasher returns an empty hashing sink.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

var _ sim.Tracer = (*Hasher)(nil)

// Event implements sim.Tracer: the event is serialized exactly as Logger
// prints it (full float64 time precision) and folded into the digest.
func (t *Hasher) Event(now sim.Time, subsys, msg string) {
	fmt.Fprintf(t.h, "[%.17g] %s: %s\n", float64(now), subsys, msg)
	t.n++
}

// Events returns the number of events hashed.
func (t *Hasher) Events() uint64 { return t.n }

// Sum returns the hex digest over every event seen so far.
func (t *Hasher) Sum() string { return fmt.Sprintf("%x", t.h.Sum(nil)) }
