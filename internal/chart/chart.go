// Package chart renders metrics series as ASCII line charts, so the
// benchmark harness can show figure-shaped output (throughput over time,
// bandwidth versus block size) directly in a terminal.
package chart

import (
	"fmt"
	"math"
	"strings"

	"e2edt/internal/metrics"
)

// Options control rendering.
type Options struct {
	Title  string
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogX spaces samples by log₂(x) — for block-size sweeps.
	LogX bool
	// YMin/YMax fix the y range; both zero = auto-scale.
	YMin, YMax float64
}

// glyphs mark successive series.
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the series into a single string.
func Render(opt Options, series ...metrics.Series) string {
	if opt.Width <= 0 {
		opt.Width = 60
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	nonEmpty := series[:0:0]
	for _, s := range series {
		if s.Len() > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := opt.YMin, opt.YMax
	auto := ymin == 0 && ymax == 0
	if auto {
		ymin, ymax = math.Inf(1), math.Inf(-1)
	}
	xval := func(x float64) float64 {
		if opt.LogX && x > 0 {
			return math.Log2(x)
		}
		return x
	}
	for _, s := range nonEmpty {
		for i := range s.Values {
			x := xval(s.Times[i])
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if auto {
				if s.Values[i] < ymin {
					ymin = s.Values[i]
				}
				if s.Values[i] > ymax {
					ymax = s.Values[i]
				}
			}
		}
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if auto && ymin > 0 && ymin < ymax/4 {
		ymin = 0 // anchor at zero when the data allows it
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range nonEmpty {
		g := glyphs[si%len(glyphs)]
		var prevC, prevR, has = 0, 0, false
		for i := range s.Values {
			c := int(math.Round((xval(s.Times[i]) - xmin) / (xmax - xmin) * float64(opt.Width-1)))
			r := opt.Height - 1 - int(math.Round((s.Values[i]-ymin)/(ymax-ymin)*float64(opt.Height-1)))
			if c < 0 || c >= opt.Width || r < 0 || r >= opt.Height {
				has = false
				continue
			}
			if has {
				drawLine(grid, prevC, prevR, c, r, '.')
			}
			grid[r][c] = g
			prevC, prevR, has = c, r, true
		}
	}

	yLabelW := 10
	for r := 0; r < opt.Height; r++ {
		y := ymax - (ymax-ymin)*float64(r)/float64(opt.Height-1)
		label := ""
		if r == 0 || r == opt.Height-1 || r == opt.Height/2 {
			label = trimFloat(y)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", opt.Width))
	left, right := xmin, xmax
	if opt.LogX {
		left, right = math.Pow(2, xmin), math.Pow(2, xmax)
	}
	xaxis := fmt.Sprintf("%s ... %s", trimFloat(left), trimFloat(right))
	if opt.XLabel != "" {
		xaxis += "  (" + opt.XLabel + ")"
	}
	fmt.Fprintf(&b, "%*s  %s\n", yLabelW, "", xaxis)
	if opt.YLabel != "" {
		fmt.Fprintf(&b, "%*s  y: %s\n", yLabelW, "", opt.YLabel)
	}
	for si, s := range nonEmpty {
		fmt.Fprintf(&b, "%*s  %c = %s\n", yLabelW, "", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// drawLine connects two cells with a sparse dotted Bresenham segment,
// leaving endpoint glyphs intact.
func drawLine(grid [][]byte, c0, r0, c1, r1 int, ch byte) {
	dc, dr := abs(c1-c0), -abs(r1-r0)
	sc, sr := sign(c1-c0), sign(r1-r0)
	err := dc + dr
	c, r := c0, r0
	for {
		if (c != c0 || r != r0) && (c != c1 || r != r1) {
			if grid[r][c] == ' ' {
				grid[r][c] = ch
			}
		}
		if c == c1 && r == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			err += dr
			c += sc
		}
		if e2 <= dc {
			err += dc
			r += sr
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// trimFloat renders a number compactly.
func trimFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 10 || av == 0:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
