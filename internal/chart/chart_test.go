package chart

import (
	"strings"
	"testing"

	"e2edt/internal/metrics"
)

func mkSeries(name string, pts ...[2]float64) metrics.Series {
	s := metrics.Series{Name: name}
	for _, p := range pts {
		s.Add(p[0], p[1])
	}
	return s
}

func TestRenderBasicShape(t *testing.T) {
	s := mkSeries("line", [2]float64{0, 0}, [2]float64{1, 50}, [2]float64{2, 100})
	out := Render(Options{Title: "T", Width: 40, Height: 10, YLabel: "Gbps"}, s)
	if !strings.Contains(out, "T\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* = line") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "y: Gbps") {
		t.Fatal("missing y label")
	}
	lines := strings.Split(out, "\n")
	// title + 10 rows + axis + xlabel + ylabel + legend + trailing
	if len(lines) < 14 {
		t.Fatalf("too few lines: %d\n%s", len(lines), out)
	}
	// The max point should be at the top row, min at the bottom.
	if !strings.Contains(lines[1], "*") {
		t.Fatalf("max sample not on top row:\n%s", out)
	}
	if !strings.Contains(lines[10], "*") {
		t.Fatalf("min sample not on bottom row:\n%s", out)
	}
}

func TestRenderMultipleSeriesGlyphs(t *testing.T) {
	a := mkSeries("a", [2]float64{0, 1}, [2]float64{1, 2})
	b := mkSeries("b", [2]float64{0, 2}, [2]float64{1, 1})
	out := Render(Options{}, a, b)
	if !strings.Contains(out, "* = a") || !strings.Contains(out, "o = b") {
		t.Fatalf("glyph legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second series not drawn")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(Options{Title: "empty"})
	if !strings.Contains(out, "no data") {
		t.Fatal("empty render should say so")
	}
	out = Render(Options{}, metrics.Series{Name: "x"})
	if !strings.Contains(out, "no data") {
		t.Fatal("series without samples should render as no data")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := mkSeries("flat", [2]float64{0, 5}, [2]float64{1, 5}, [2]float64{2, 5})
	out := Render(Options{Width: 20, Height: 5}, s)
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series missing:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	s := mkSeries("pt", [2]float64{3, 7})
	out := Render(Options{}, s)
	if !strings.Contains(out, "*") {
		t.Fatal("single point missing")
	}
}

func TestLogXAxis(t *testing.T) {
	s := mkSeries("bs", [2]float64{65536, 1}, [2]float64{1048576, 10}, [2]float64{16777216, 39})
	out := Render(Options{LogX: true, XLabel: "block size"}, s)
	if !strings.Contains(out, "block size") {
		t.Fatal("x label missing")
	}
	// Log axis should report original bounds (64k, 16.8M).
	if !strings.Contains(out, "65.5k") || !strings.Contains(out, "16.8M") {
		t.Fatalf("log axis bounds wrong:\n%s", out)
	}
}

func TestFixedYRange(t *testing.T) {
	s := mkSeries("s", [2]float64{0, 50})
	out := Render(Options{YMin: 0.0001, YMax: 100, Height: 11}, s)
	// 50 on a 0..100 scale lands mid-chart.
	lines := strings.Split(out, "\n")
	mid := lines[5]
	if !strings.Contains(mid, "*") {
		t.Fatalf("fixed-range placement wrong:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5.25:   "5.25",
		42:     "42",
		1500:   "1.5k",
		2.5e6:  "2.5M",
		3.21e9: "3.2G",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestLineDrawingConnects(t *testing.T) {
	// Two distant points: interior cells should carry dots.
	s := mkSeries("l", [2]float64{0, 0}, [2]float64{10, 10})
	out := Render(Options{Width: 30, Height: 10}, s)
	if !strings.Contains(out, ".") {
		t.Fatalf("no connecting dots:\n%s", out)
	}
}
