package units_test

import (
	"fmt"

	"e2edt/internal/units"
)

func ExampleFormatRate() {
	fmt.Println(units.FormatRate(units.FromGbps(91)))
	fmt.Println(units.FormatRate(500 * units.Mbps))
	// Output:
	// 91.0 Gbps
	// 500 Mbps
}

func ExampleParseBlockSize() {
	n, _ := units.ParseBlockSize("4MB")
	fmt.Println(n, units.FormatBytes(n))
	// Output:
	// 4194304 4MB
}
