package units

import (
	"testing"
	"testing/quick"
)

func TestConversionsRoundTrip(t *testing.T) {
	if got := ToGbps(FromGbps(40)); got != 40 {
		t.Fatalf("round trip 40 Gbps = %v", got)
	}
	if got := ToGbps(Gbps); got != 1 {
		t.Fatalf("ToGbps(Gbps) = %v, want 1", got)
	}
	if got := ToMBps(MBps); got != 1 {
		t.Fatalf("ToMBps(MBps) = %v, want 1", got)
	}
	if got := ToGBps(GBps); got != 1 {
		t.Fatalf("ToGBps(GBps) = %v, want 1", got)
	}
}

func TestConversionRoundTripProperty(t *testing.T) {
	f := func(g float64) bool {
		if g < 0 || g > 1e6 {
			return true
		}
		back := ToGbps(FromGbps(g))
		return back >= g*(1-1e-12) && back <= g*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{KB, "1KB"},
		{4 * MB, "4MB"},
		{256 * KB, "256KB"},
		{50 * GB, "50GB"},
		{2 * TB, "2TB"},
		{3 * MB / 2, "1.5MB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	if got := FormatRate(FromGbps(91)); got != "91.0 Gbps" {
		t.Errorf("FormatRate(91Gbps) = %q", got)
	}
	if got := FormatRate(FromGbps(0.5)); got != "500 Mbps" {
		t.Errorf("FormatRate(0.5Gbps) = %q", got)
	}
}

func TestParseBlockSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"4MB", 4 * MB},
		{"4M", 4 * MB},
		{"256KB", 256 * KB},
		{"64K", 64 * KB},
		{"1G", GB},
		{"1024", 1024},
		{"0.5M", MB / 2},
	}
	for _, c := range cases {
		got, err := ParseBlockSize(c.in)
		if err != nil {
			t.Errorf("ParseBlockSize(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBlockSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBlockSizeErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "4X", "-1M", "0"} {
		if _, err := ParseBlockSize(in); err == nil {
			t.Errorf("ParseBlockSize(%q) should fail", in)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	for _, n := range []int64{KB, 64 * KB, 256 * KB, MB, 4 * MB, 16 * MB, GB} {
		s := FormatBytes(n)
		back, err := ParseBlockSize(s)
		if err != nil {
			t.Fatalf("ParseBlockSize(FormatBytes(%d)=%q): %v", n, s, err)
		}
		if back != n {
			t.Fatalf("round trip %d → %q → %d", n, s, back)
		}
	}
}
