// Package units defines byte-count and bandwidth units plus human-readable
// formatting used throughout the simulator and the benchmark harness.
package units

import "fmt"

// Byte counts. These are exact binary sizes (KiB-style) because block sizes
// in the paper (4 MB blocks, 50 GB LUNs, ...) follow storage conventions.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Bandwidth values are bytes per second (float64). The paper quotes link
// speeds in bits per second, so conversion helpers are provided.
const (
	// BitsPerByte converts bit rates to byte rates.
	BitsPerByte = 8.0
	// Gbps is one gigabit per second expressed in bytes/second
	// (decimal giga, as network link rates are decimal).
	Gbps = 1e9 / BitsPerByte
	// Mbps is one megabit per second in bytes/second.
	Mbps = 1e6 / BitsPerByte
	// GBps is one gigabyte per second (decimal) in bytes/second.
	GBps = 1e9
	// MBps is one megabyte per second (decimal) in bytes/second.
	MBps = 1e6
)

// ToGbps converts a byte rate into gigabits per second.
func ToGbps(bytesPerSec float64) float64 { return bytesPerSec * BitsPerByte / 1e9 }

// ToMBps converts a byte rate into decimal megabytes per second.
func ToMBps(bytesPerSec float64) float64 { return bytesPerSec / 1e6 }

// ToGBps converts a byte rate into decimal gigabytes per second.
func ToGBps(bytesPerSec float64) float64 { return bytesPerSec / 1e9 }

// FromGbps converts gigabits per second into bytes per second.
func FromGbps(gbps float64) float64 { return gbps * 1e9 / BitsPerByte }

// FormatBytes renders a byte count with a binary-unit suffix (e.g. "4MB",
// "256KB", "1.5GB"), matching how the paper labels block sizes.
func FormatBytes(n int64) string {
	type unit struct {
		size   int64
		suffix string
	}
	for _, u := range []unit{{TB, "TB"}, {GB, "GB"}, {MB, "MB"}, {KB, "KB"}} {
		if n < u.size {
			continue
		}
		if n%u.size == 0 {
			return fmt.Sprintf("%d%s", n/u.size, u.suffix)
		}
		return fmt.Sprintf("%.1f%s", float64(n)/float64(u.size), u.suffix)
	}
	return fmt.Sprintf("%dB", n)
}

// FormatRate renders a byte rate as "X.X Gbps" (or Mbps below 1 Gbps),
// the unit the paper reports bandwidth in.
func FormatRate(bytesPerSec float64) string {
	g := ToGbps(bytesPerSec)
	if g >= 1 {
		return fmt.Sprintf("%.1f Gbps", g)
	}
	return fmt.Sprintf("%.0f Mbps", bytesPerSec*BitsPerByte/1e6)
}

// ParseBlockSize converts strings like "4MB", "256KB", "64K", "1M" into a
// byte count. It accepts the suffixes B, K/KB, M/MB, G/GB (case-insensitive).
func ParseBlockSize(s string) (int64, error) {
	var value float64
	var suffix string
	if _, err := fmt.Sscanf(s, "%f%s", &value, &suffix); err != nil {
		if _, err2 := fmt.Sscanf(s, "%f", &value); err2 != nil {
			return 0, fmt.Errorf("units: cannot parse block size %q", s)
		}
		suffix = "B"
	}
	var mult int64
	switch suffix {
	case "B", "b", "":
		mult = 1
	case "K", "k", "KB", "kb", "KiB":
		mult = KB
	case "M", "m", "MB", "mb", "MiB":
		mult = MB
	case "G", "g", "GB", "gb", "GiB":
		mult = GB
	default:
		return 0, fmt.Errorf("units: unknown size suffix %q in %q", suffix, s)
	}
	n := int64(value * float64(mult))
	if n <= 0 {
		return 0, fmt.Errorf("units: non-positive block size %q", s)
	}
	return n, nil
}
