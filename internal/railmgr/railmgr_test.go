package railmgr

import (
	"testing"

	"e2edt/internal/sim"
	"e2edt/internal/testbed"
)

// newMgr builds a manager over the §2.3 three-rail testbed.
func newMgr(t *testing.T, pol Policy) (*testbed.MotivatingPair, *Manager) {
	t.Helper()
	tb := testbed.NewMotivatingPair()
	m := New(tb.Eng, tb.Links, pol)
	t.Cleanup(m.Stop)
	return tb, m
}

// run advances virtual time; the heartbeat keeps the queue alive, so a
// bounded RunUntil is the only safe way to step.
func run(tb *testbed.MotivatingPair, d sim.Duration) {
	tb.Eng.RunUntil(tb.Eng.Now() + sim.Time(d))
}

// TestStateMachine walks the rail state machine through every transition
// the manager classifies, including flapping mid-probe.
func TestStateMachine(t *testing.T) {
	type step struct {
		name string
		act  func(tb *testbed.MotivatingPair)
		wait sim.Duration
		want [3]State
	}
	steps := []step{
		{
			name: "initial",
			act:  func(*testbed.MotivatingPair) {},
			want: [3]State{Healthy, Healthy, Healthy},
		},
		{
			name: "degrade rail1",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[1].Degrade(0.5) },
			want: [3]State{Healthy, Degraded, Healthy},
		},
		{
			name: "kill rail1 while degraded",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[1].Fail() },
			want: [3]State{Healthy, Dead, Healthy},
		},
		{
			name: "restore enters probing, not service",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[1].Restore() },
			want: [3]State{Healthy, Probing, Healthy},
		},
		{
			name: "re-admitted at standing degraded fraction",
			act:  func(*testbed.MotivatingPair) {},
			wait: 50 * sim.Millisecond, // two chained echo RTTs
			want: [3]State{Healthy, Degraded, Healthy},
		},
		{
			name: "degradation cleared",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[1].Degrade(1) },
			want: [3]State{Healthy, Healthy, Healthy},
		},
		{
			name: "kill rail0",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[0].Fail() },
			want: [3]State{Dead, Healthy, Healthy},
		},
		{
			name: "flap: fail again mid-probe",
			act: func(tb *testbed.MotivatingPair) {
				tb.Links[0].Restore()
				// Still Probing — the first echo has not returned yet.
				tb.Links[0].Fail()
			},
			want: [3]State{Dead, Healthy, Healthy},
		},
		{
			name: "second restore completes failback",
			act:  func(tb *testbed.MotivatingPair) { tb.Links[0].Restore() },
			wait: 50 * sim.Millisecond,
			want: [3]State{Healthy, Healthy, Healthy},
		},
	}

	tb, m := newMgr(t, DefaultPolicy())
	for _, st := range steps {
		st.act(tb)
		if st.wait > 0 {
			run(tb, st.wait)
		}
		for i := range st.want {
			if got := m.State(i); got != st.want[i] {
				t.Fatalf("%s: rail %d = %v, want %v", st.name, i, got, st.want[i])
			}
		}
	}
	if m.Deaths != 3 {
		t.Fatalf("Deaths = %d, want 3", m.Deaths)
	}
	if m.Readmissions != 2 {
		t.Fatalf("Readmissions = %d, want 2", m.Readmissions)
	}
	// The flap must appear in the history as Dead -> Probing -> Dead.
	var rail0 []State
	for _, tr := range m.Transitions {
		if tr.Rail == 0 {
			rail0 = append(rail0, tr.To)
		}
	}
	want := []State{Dead, Probing, Dead, Probing, Healthy}
	if len(rail0) != len(want) {
		t.Fatalf("rail0 history %v, want %v", rail0, want)
	}
	for i := range want {
		if rail0[i] != want[i] {
			t.Fatalf("rail0 history %v, want %v", rail0, want)
		}
	}
}

// TestUsableRails checks the policy-facing queries.
func TestUsableRails(t *testing.T) {
	tb, m := newMgr(t, DefaultPolicy())
	if got := m.UsableRails(); len(got) != 3 {
		t.Fatalf("usable = %v, want all three", got)
	}
	tb.Links[1].Fail()
	got := m.UsableRails()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("usable = %v, want [0 2]", got)
	}
	if m.Usable(1) || !m.Usable(0) {
		t.Fatal("Usable() disagrees with UsableRails()")
	}
	tb.Links[2].Degrade(0.25)
	if !m.Usable(2) {
		t.Fatal("degraded rail must stay usable")
	}
}

// TestFailbackRequiresConsecutiveEchoes: a probe interrupted by a missed
// deadline restarts the verification count, so a half-alive rail is not
// re-admitted on a single lucky echo.
func TestFailbackRequiresConsecutiveEchoes(t *testing.T) {
	pol := DefaultPolicy()
	pol.FailbackProbes = 3
	tb, m := newMgr(t, pol)
	l := tb.Links[0]
	l.Fail()
	l.Restore()
	if m.State(0) != Probing {
		t.Fatalf("state = %v, want probing", m.State(0))
	}
	// One echo round trip is ~RTT; after the first echo the rail must
	// still be probing (needs 3).
	run(tb, l.RTT()+sim.Microsecond)
	if m.State(0) != Probing {
		t.Fatalf("after one echo: %v, want still probing", m.State(0))
	}
	run(tb, 3*l.RTT())
	if m.State(0) != Healthy {
		t.Fatalf("after three echoes: %v, want healthy", m.State(0))
	}
	if m.Readmissions != 1 {
		t.Fatalf("Readmissions = %d, want 1", m.Readmissions)
	}
}

// TestHeartbeatDeclaresDeath drives the belt-and-braces path directly: a
// rail whose probes go unanswered (without a link-down edge) is declared
// Dead after MissedProbes consecutive misses.
func TestHeartbeatDeclaresDeath(t *testing.T) {
	pol := DefaultPolicy()
	pol.MissedProbes = 2
	tb, m := newMgr(t, pol)
	m.probeMissed(0, m.seq[0])
	if m.State(0) != Healthy {
		t.Fatalf("one miss flipped the rail: %v", m.State(0))
	}
	m.probeMissed(0, m.seq[0])
	if m.State(0) != Dead {
		t.Fatalf("two misses: %v, want dead", m.State(0))
	}
	// A stale echo from before the death must not resurrect anything.
	m.probeEcho(0, m.seq[0]-1)
	if m.State(0) != Dead {
		t.Fatalf("stale echo resurrected rail: %v", m.State(0))
	}
	_ = tb
}

// TestDeterministicHistory: the same fault sequence replays to an
// identical transition history.
func TestDeterministicHistory(t *testing.T) {
	histories := make([][]Transition, 2)
	for run := range histories {
		tb, m := newMgr(t, DefaultPolicy())
		tb.Eng.At(sim.Time(100*sim.Millisecond), tb.Links[0].Fail)
		tb.Eng.At(sim.Time(300*sim.Millisecond), tb.Links[0].Restore)
		tb.Eng.At(sim.Time(400*sim.Millisecond), func() { tb.Links[2].Degrade(0.5) })
		tb.Eng.RunUntil(sim.Time(600 * sim.Millisecond))
		histories[run] = append([]Transition(nil), m.Transitions...)
	}
	if len(histories[0]) == 0 {
		t.Fatal("no transitions recorded")
	}
	if len(histories[0]) != len(histories[1]) {
		t.Fatalf("history lengths differ: %d vs %d", len(histories[0]), len(histories[1]))
	}
	for i := range histories[0] {
		if histories[0][i] != histories[1][i] {
			t.Fatalf("histories diverge at %d: %+v vs %+v", i, histories[0][i], histories[1][i])
		}
	}
}
