package railmgr

import (
	"sort"

	"e2edt/internal/sim"
)

// GrayPolicy tunes the peer-comparison outlier scorer. The scorer exists
// for the failure mode the probe heartbeat is structurally blind to: a
// rail that answers every probe and reports Fraction()==1, yet delivers a
// fraction of its peers' throughput (sagging optics, a limping NIC, a
// congested switch radix). No absolute threshold can catch it — "slow" is
// only meaningful relative to the cohort carrying the same workload — so
// the scorer compares each rail's decayed per-stream delivered rate and
// probe latency against the cohort median and applies hysteresis in both
// directions: a rail is marked Suspect only after SuspectAfter consecutive
// breaches, escalated to Degraded only after sustained collapse, and
// exonerated only after ClearAfter consecutive clean scores.
type GrayPolicy struct {
	// Enabled switches the scorer on. Off (the zero value), the manager
	// performs no gray accounting and schedules nothing extra, so legacy
	// runs replay bit-identically.
	Enabled bool
	// Decay is the EWMA smoothing factor for rate and latency estimates
	// (default 0.3; higher reacts faster, lower rides out bursts).
	Decay float64
	// SuspectBelow marks a rail Suspect when its per-stream rate falls
	// below this fraction of the cohort median (default 0.7).
	SuspectBelow float64
	// DegradeBelow escalates a Suspect rail to Degraded when its ratio
	// stays below this fraction (default 0.45).
	DegradeBelow float64
	// ClearAbove exonerates a suspect once its ratio recovers past this
	// fraction (default 0.85). The gap between SuspectBelow and ClearAbove
	// is the hysteresis band that prevents verdict flapping.
	ClearAbove float64
	// LatencyOutlier marks a rail Suspect when its probe latency exceeds
	// this multiple of the cohort median (default 3), catching jitter
	// inflation that leaves throughput intact.
	LatencyOutlier float64
	// SuspectAfter is how many consecutive breaching scores are needed
	// before any verdict (default 3).
	SuspectAfter int
	// ClearAfter is how many consecutive clean scores exonerate (default 3).
	ClearAfter int
	// MinSamples is how many rate observations a rail needs before it
	// joins the cohort (default 3) — a freshly admitted rail is neither
	// judged nor used as evidence against its peers.
	MinSamples int
	// MinWeight floors GrayWeight so a suspect rail always keeps a trickle
	// of credit (default 0.1); starving it entirely would destroy the very
	// rate signal needed to notice recovery.
	MinWeight float64
}

// DefaultGrayPolicy returns the tuned scorer policy, enabled.
func DefaultGrayPolicy() GrayPolicy {
	return GrayPolicy{
		Enabled:        true,
		Decay:          0.3,
		SuspectBelow:   0.7,
		DegradeBelow:   0.45,
		ClearAbove:     0.85,
		LatencyOutlier: 3,
		SuspectAfter:   3,
		ClearAfter:     3,
		MinSamples:     3,
		MinWeight:      0.1,
	}
}

// withDefaults fills zero fields.
func (g GrayPolicy) withDefaults() GrayPolicy {
	d := DefaultGrayPolicy()
	if g.Decay <= 0 || g.Decay > 1 {
		g.Decay = d.Decay
	}
	if g.SuspectBelow <= 0 {
		g.SuspectBelow = d.SuspectBelow
	}
	if g.DegradeBelow <= 0 {
		g.DegradeBelow = d.DegradeBelow
	}
	if g.ClearAbove <= 0 {
		g.ClearAbove = d.ClearAbove
	}
	if g.LatencyOutlier <= 0 {
		g.LatencyOutlier = d.LatencyOutlier
	}
	if g.SuspectAfter <= 0 {
		g.SuspectAfter = d.SuspectAfter
	}
	if g.ClearAfter <= 0 {
		g.ClearAfter = d.ClearAfter
	}
	if g.MinSamples <= 0 {
		g.MinSamples = d.MinSamples
	}
	if g.MinWeight <= 0 {
		g.MinWeight = d.MinWeight
	}
	return g
}

// ObserveRate feeds one delivered-rate sample for rail i, normalized per
// active stream by the caller (the transfer's progress watchdog). The
// normalization is what makes cohort comparison load-independent: a rail
// carrying two streams legitimately delivers twice the bytes of a rail
// carrying one, and must not be judged faster for it.
func (m *Manager) ObserveRate(i int, ratePerStream float64) {
	if !m.pol.Gray.Enabled || m.stop {
		return
	}
	m.grayRate[i].Observe(ratePerStream)
}

// score runs one peer-comparison round over the cohort of usable rails
// with settled rate estimates. It is called from the heartbeat tick, so
// verdict cadence equals probe cadence and everything stays on the
// virtual clock.
func (m *Manager) score(now sim.Time) {
	_ = now
	g := m.pol.Gray
	var cohort []int
	for i := range m.links {
		if m.states[i].Usable() && m.grayRate[i].Samples() >= g.MinSamples {
			cohort = append(cohort, i)
		}
	}
	// One rail has no peers; with none there is no evidence at all.
	if len(cohort) < 2 {
		return
	}
	rates := make([]float64, len(cohort))
	lats := make([]float64, len(cohort))
	for k, i := range cohort {
		rates[k] = m.grayRate[i].Value()
		lats[k] = m.grayLat[i].Value()
	}
	medRate := median(rates)
	medLat := median(lats)

	for _, i := range cohort {
		ratio := 1.0
		if medRate > 0 {
			ratio = m.grayRate[i].Value() / medRate
		}
		m.ratio[i] = ratio
		latRatio := 1.0
		if medLat > 0 && m.grayLat[i].Samples() > 0 {
			latRatio = m.grayLat[i].Value() / medLat
		}
		breached := ratio < g.SuspectBelow || latRatio > g.LatencyOutlier
		clean := ratio > g.ClearAbove && latRatio <= g.LatencyOutlier

		switch m.states[i] {
		case Healthy:
			if breached {
				m.breach[i]++
				if m.breach[i] >= g.SuspectAfter {
					m.transition(i, Suspect)
				}
			} else {
				m.breach[i] = 0
			}
		case Suspect:
			switch {
			case ratio < g.DegradeBelow:
				m.breach[i]++
				m.clear[i] = 0
				if m.breach[i] >= g.SuspectAfter {
					m.grayDeg[i] = true
					m.GrayDegradations++
					m.transition(i, Degraded)
				}
			case clean:
				m.clear[i]++
				m.breach[i] = 0
				if m.clear[i] >= g.ClearAfter {
					m.GrayClears++
					m.transition(i, Healthy)
				}
			default:
				m.breach[i], m.clear[i] = 0, 0
			}
		case Degraded:
			// Only scorer-imposed degradations are scorer-revocable; a
			// link-layer degrade clears on the link's own up-fraction event.
			if !m.grayDeg[i] {
				continue
			}
			if clean {
				m.clear[i]++
				if m.clear[i] >= g.ClearAfter {
					m.grayDeg[i] = false
					m.GrayClears++
					if m.links[i].Fraction() < 1 {
						continue // still visibly degraded underneath
					}
					m.transition(i, Healthy)
				}
			} else {
				m.clear[i] = 0
			}
		}
	}
}

// GrayWeight returns the credit-share multiplier for rail i: 1 for rails
// the scorer trusts, the clamped cohort-relative rate ratio for rails
// under a gray verdict. Arbiters multiply their fair-share weights by
// this, so a rail delivering 30% of the median keeps roughly 30% of its
// credits instead of dragging every stream pinned to it.
func (m *Manager) GrayWeight(i int) float64 {
	if !m.pol.Gray.Enabled {
		return 1
	}
	if m.states[i] != Suspect && !(m.states[i] == Degraded && m.grayDeg[i]) {
		return 1
	}
	w := m.ratio[i]
	if w < m.pol.Gray.MinWeight {
		w = m.pol.Gray.MinWeight
	}
	if w > 1 {
		w = 1
	}
	return w
}

// Suspect reports whether rail i is currently under a gray verdict
// (Suspect, or Degraded by the scorer rather than the link layer).
func (m *Manager) Suspect(i int) bool {
	return m.states[i] == Suspect || (m.states[i] == Degraded && m.grayDeg[i])
}

// SuspectRails returns the indices of rails under a gray verdict, ascending.
func (m *Manager) SuspectRails() []int {
	var out []int
	for i := range m.states {
		if m.Suspect(i) {
			out = append(out, i)
		}
	}
	return out
}

// FirstSuspectAt returns the virtual time of the first Suspect entry and
// whether one ever happened — the numerator of detection latency.
func (m *Manager) FirstSuspectAt() (sim.Time, bool) {
	if m.firstSus < 0 {
		return 0, false
	}
	return m.firstSus, true
}

// RateRatio returns rail i's last cohort-relative per-stream rate ratio
// (1 before any scoring round has judged it).
func (m *Manager) RateRatio(i int) float64 { return m.ratio[i] }

// median returns the median of xs, averaging the middle pair for even
// lengths. xs is scratch and may be reordered.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
