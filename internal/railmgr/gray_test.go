package railmgr

import (
	"reflect"
	"testing"

	"e2edt/internal/sim"
	"e2edt/internal/testbed"
)

// grayMgr builds a manager with the scorer on, plus a 25ms feed ticker
// that reports each rail's per-stream rate as its current silent sag —
// the unit-test stand-in for the transfer's progress watchdog.
func grayMgr(t *testing.T) (*testbed.MotivatingPair, *Manager) {
	t.Helper()
	tb, m := newMgr(t, Policy{Gray: DefaultGrayPolicy()})
	tb.Eng.NewTicker(25*sim.Millisecond, func(sim.Time) {
		for i, l := range tb.Links {
			m.ObserveRate(i, l.GraySag())
		}
	})
	return tb, m
}

// TestGraySuspectOnSilentSag: a silent 70% capacity sag — invisible to
// the link watcher and every probe — is caught by peer comparison, and
// REGRESSION: the binary death detector never kills the suspect rail,
// which keeps carrying traffic the whole time.
func TestGraySuspectOnSilentSag(t *testing.T) {
	tb, m := grayMgr(t)
	run(tb, 500*sim.Millisecond) // settle a healthy baseline
	if got := m.SuspectRails(); got != nil {
		t.Fatalf("healthy cohort produced suspects: %v", got)
	}

	sagAt := tb.Eng.Now()
	tb.Links[1].GrayDegrade(0.5)
	run(tb, 1*sim.Second)

	if m.State(1) != Suspect {
		t.Fatalf("rail 1 = %v after sustained silent sag, want suspect", m.State(1))
	}
	if !m.Usable(1) {
		t.Fatal("suspect rail must stay usable — it is degraded, not dead")
	}
	if m.Deaths != 0 {
		t.Fatalf("binary detector killed a gray rail: Deaths = %d", m.Deaths)
	}
	if got := m.SuspectRails(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("SuspectRails = %v, want [1]", got)
	}
	if m.State(0) != Healthy || m.State(2) != Healthy {
		t.Fatalf("healthy peers misjudged: %v %v", m.State(0), m.State(2))
	}
	at, ok := m.FirstSuspectAt()
	if !ok {
		t.Fatal("FirstSuspectAt unset after a suspect entry")
	}
	if lat := at - sagAt; lat <= 0 || lat > sim.Time(500*sim.Millisecond) {
		t.Fatalf("detection latency %v outside (0, 500ms]", lat)
	}
	if w := m.GrayWeight(1); w <= 0 || w >= 1 {
		t.Fatalf("suspect rail GrayWeight = %g, want in (0, 1)", w)
	}
	if w := m.GrayWeight(0); w != 1 {
		t.Fatalf("healthy rail GrayWeight = %g, want 1", w)
	}

	// Recovery: sag lifts, the suspect is exonerated after ClearAfter
	// consecutive clean scores.
	tb.Links[1].GrayDegrade(1)
	run(tb, 1*sim.Second)
	if m.State(1) != Healthy {
		t.Fatalf("rail 1 = %v after recovery, want healthy", m.State(1))
	}
	if m.GrayClears == 0 {
		t.Fatal("recovery not counted as a gray clear")
	}
	if w := m.GrayWeight(1); w != 1 {
		t.Fatalf("exonerated rail GrayWeight = %g, want 1", w)
	}
}

// TestGrayEscalatesToDegraded: a collapse below DegradeBelow walks the
// hysteresis ladder Healthy→Suspect→Degraded, and the scorer's own
// degradation is scorer-revocable on recovery.
func TestGrayEscalatesToDegraded(t *testing.T) {
	tb, m := grayMgr(t)
	run(tb, 500*sim.Millisecond)
	tb.Links[1].GrayDegrade(0.2)
	run(tb, 2*sim.Second)

	if m.State(1) != Degraded {
		t.Fatalf("rail 1 = %v after deep sag, want degraded", m.State(1))
	}
	if m.GrayDegradations == 0 {
		t.Fatal("escalation not counted")
	}
	if !m.Suspect(1) {
		t.Fatal("scorer-degraded rail must still report Suspect(i)")
	}
	if !m.Usable(1) {
		t.Fatal("gray-degraded rail must stay usable")
	}
	// The ladder was walked in order: Suspect strictly before Degraded.
	sawSuspect := false
	for _, tr := range m.Transitions {
		if tr.Rail != 1 {
			continue
		}
		if tr.To == Suspect {
			sawSuspect = true
		}
		if tr.To == Degraded && !sawSuspect {
			t.Fatal("rail degraded without passing through suspect")
		}
	}
	if !sawSuspect {
		t.Fatal("no suspect transition recorded")
	}

	tb.Links[1].GrayDegrade(1)
	run(tb, 2*sim.Second)
	if m.State(1) != Healthy {
		t.Fatalf("rail 1 = %v after recovery, want healthy", m.State(1))
	}
	if m.Suspect(1) {
		t.Fatal("exonerated rail still reports suspect")
	}
}

// TestGrayLatencyOutlier: jitter inflation with intact throughput is
// caught by the probe-latency arm of the scorer.
func TestGrayLatencyOutlier(t *testing.T) {
	tb, m := grayMgr(t)
	run(tb, 500*sim.Millisecond)
	tb.Links[1].InflateLatency(10)
	run(tb, 1*sim.Second)
	if m.State(1) != Suspect {
		t.Fatalf("rail 1 = %v under 10x latency inflation, want suspect", m.State(1))
	}
	if m.Deaths != 0 {
		t.Fatalf("latency outlier killed: Deaths = %d", m.Deaths)
	}
	tb.Links[1].InflateLatency(1)
	run(tb, 2*sim.Second)
	if m.State(1) != Healthy {
		t.Fatalf("rail 1 = %v after jitter clears, want healthy", m.State(1))
	}
}

// TestGrayVisibleDegradeOutranksVerdict: a link-layer degrade event on a
// Suspect rail converts the statistical verdict into the stronger
// link-backed Degraded state, which then clears on the link's own edge.
func TestGrayVisibleDegradeOutranksVerdict(t *testing.T) {
	tb, m := grayMgr(t)
	run(tb, 500*sim.Millisecond)
	tb.Links[1].GrayDegrade(0.5)
	run(tb, 1*sim.Second)
	if m.State(1) != Suspect {
		t.Fatalf("precondition: rail 1 = %v, want suspect", m.State(1))
	}
	tb.Links[1].Degrade(0.5)
	if m.State(1) != Degraded {
		t.Fatalf("visible degrade on suspect rail: %v, want degraded", m.State(1))
	}
	if m.Suspect(1) {
		t.Fatal("link-backed degradation must not be attributed to the scorer")
	}
	tb.Links[1].GrayDegrade(1)
	tb.Links[1].Degrade(1)
	run(tb, 100*sim.Millisecond)
	if m.State(1) != Healthy {
		t.Fatalf("rail 1 = %v after link clears, want healthy", m.State(1))
	}
}

// TestGraySuspectStillDiesOnRealLoss: the regression's other direction —
// Suspect softens nothing about true failure. A dark fiber under a
// suspect rail is still declared Dead by missed heartbeats.
func TestGraySuspectStillDiesOnRealLoss(t *testing.T) {
	tb, m := grayMgr(t)
	run(tb, 500*sim.Millisecond)
	tb.Links[1].GrayDegrade(0.5)
	run(tb, 1*sim.Second)
	if m.State(1) != Suspect {
		t.Fatalf("precondition: rail 1 = %v, want suspect", m.State(1))
	}
	tb.Links[1].Fail()
	if m.State(1) != Dead {
		t.Fatalf("failed suspect rail = %v, want dead", m.State(1))
	}
	if m.Deaths != 1 {
		t.Fatalf("Deaths = %d, want 1", m.Deaths)
	}
	// Readmission wipes the rail's statistical history.
	tb.Links[1].GrayDegrade(1)
	tb.Links[1].Restore()
	run(tb, 1*sim.Second)
	if m.State(1) != Healthy {
		t.Fatalf("rail 1 = %v after repair, want healthy", m.State(1))
	}
	if m.RateRatio(1) != 1 {
		t.Fatalf("readmitted rail kept stale ratio %g", m.RateRatio(1))
	}
}

// TestGrayDisabledIsInert: without Gray.Enabled the manager performs no
// gray accounting at all — a silently sagging rail is (correctly, per the
// legacy contract) never suspected, and the transition history matches a
// fault-free run exactly.
func TestGrayDisabledIsInert(t *testing.T) {
	tb, m := newMgr(t, Policy{})
	tb.Eng.NewTicker(25*sim.Millisecond, func(sim.Time) {
		for i, l := range tb.Links {
			m.ObserveRate(i, l.GraySag())
		}
	})
	tb.Links[1].GrayDegrade(0.5)
	run(tb, 3*sim.Second)
	if len(m.Transitions) != 0 {
		t.Fatalf("gray-off manager recorded transitions: %v", m.Transitions)
	}
	if m.SuspectEntries != 0 || m.GrayDegradations != 0 || m.GrayClears != 0 {
		t.Fatal("gray counters moved while disabled")
	}
	if w := m.GrayWeight(1); w != 1 {
		t.Fatalf("gray-off GrayWeight = %g, want 1", w)
	}
}
