// Package railmgr is a per-transfer rail health manager: it watches the
// fabric's link transitions and runs a stall-probe heartbeat over every
// rail a transfer spans, classifying each one Healthy, Degraded, Dead or
// Probing. The classification is what multipath policy hangs off:
//
//   - a rail that goes Dead must shed its streams (failover) — in-protocol
//     retransmission on the same path can never drain a dark fiber;
//   - a Degraded rail keeps its streams but should carry a smaller credit
//     window (rebalance) — it still makes progress, just slower;
//   - a restored rail is not trusted on the link-up edge alone: it is
//     re-probed end to end (Probing) and only re-admitted after
//     FailbackProbes consecutive echoes, which dampens flapping optics.
//
// The manager is deterministic: watchers fire synchronously inside link
// transitions, probes ride the same virtual clock as everything else, and
// no randomness is drawn, so the same fault schedule yields the same
// transition history bit for bit.
package railmgr

import (
	"fmt"

	"e2edt/internal/fabric"
	"e2edt/internal/metrics"
	"e2edt/internal/sim"
)

// State classifies one rail.
type State int

const (
	// Healthy: full capacity, carrying traffic.
	Healthy State = iota
	// Degraded: reduced capacity (Link.Fraction < 1) but alive — streams
	// stay put, credit windows shrink.
	Degraded
	// Dead: dark — control messages drop, flows stall, streams must leave.
	Dead
	// Probing: the link-layer came back up; end-to-end echoes must succeed
	// before the rail is re-admitted.
	Probing
	// Suspect: the rail answers every probe and reports full link-layer
	// capacity, yet its delivered rate or probe latency is a statistical
	// outlier against its cohort — a gray failure. Suspect rails stay
	// usable (they make progress), but arbiters decay their weight and
	// hedging avoids them as retry targets.
	Suspect
)

// String names the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	case Suspect:
		return "suspect"
	default:
		return "probing"
	}
}

// Usable reports whether a rail in this state may carry streams.
func (s State) Usable() bool { return s == Healthy || s == Degraded || s == Suspect }

// Policy tunes the manager.
type Policy struct {
	// Enabled switches rail management on (the zero value disables it, so
	// embedding configs keep their legacy fixed-NIC behavior).
	Enabled bool
	// ProbeEvery is the heartbeat period on live rails (default 100 ms).
	ProbeEvery sim.Duration
	// ProbeTimeout is how long one echo may take before it counts as
	// missed; it is clamped to at least twice the rail's RTT (default 25 ms).
	ProbeTimeout sim.Duration
	// ProbeBytes is the probe message size (default 64).
	ProbeBytes float64
	// FailbackProbes is how many consecutive echoes a restored rail must
	// return before re-admission (default 2).
	FailbackProbes int
	// MissedProbes is how many consecutive missed heartbeats declare a
	// live rail Dead even without a link-down event (default 2).
	MissedProbes int
	// Gray configures the peer-comparison outlier scorer that catches
	// degraded-but-alive rails the binary probe detector cannot see. The
	// zero value disables it: no extra events, no extra state transitions.
	Gray GrayPolicy
}

// DefaultPolicy returns the tuned rail policy, enabled.
func DefaultPolicy() Policy {
	return Policy{
		Enabled:        true,
		ProbeEvery:     100 * sim.Millisecond,
		ProbeTimeout:   25 * sim.Millisecond,
		ProbeBytes:     64,
		FailbackProbes: 2,
		MissedProbes:   2,
	}
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	d := DefaultPolicy()
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = d.ProbeEvery
	}
	if p.ProbeTimeout <= 0 {
		p.ProbeTimeout = d.ProbeTimeout
	}
	if p.ProbeBytes <= 0 {
		p.ProbeBytes = d.ProbeBytes
	}
	if p.FailbackProbes <= 0 {
		p.FailbackProbes = d.FailbackProbes
	}
	if p.MissedProbes <= 0 {
		p.MissedProbes = d.MissedProbes
	}
	p.Gray = p.Gray.withDefaults()
	return p
}

// ProbeBudget returns the worst-case re-admission latency the policy
// allows a restored rail: one heartbeat period to notice it, plus the
// consecutive verification echoes. Watchdogs above the transfer add this
// to their grace window while a failover is in flight.
func (p Policy) ProbeBudget() sim.Duration {
	p = p.withDefaults()
	return p.ProbeEvery + sim.Duration(p.FailbackProbes)*p.ProbeTimeout
}

// Transition records one state change for reports and tests.
type Transition struct {
	Rail     int
	From, To State
	At       sim.Time
}

// Manager classifies a set of rails and drives failover/failback policy
// through its OnTransition callback.
type Manager struct {
	// OnTransition, when set, fires synchronously on every state change.
	OnTransition func(rail int, from, to State, now sim.Time)
	// Transitions is the full state-change history.
	Transitions []Transition
	// Deaths and Readmissions count Dead entries and Probing→usable exits.
	Deaths, Readmissions int
	// SuspectEntries, GrayDegradations and GrayClears count the gray
	// scorer's verdicts: rails entering Suspect, Suspect rails escalated to
	// Degraded, and suspects exonerated back to Healthy.
	SuspectEntries, GrayDegradations, GrayClears int

	pol    Policy
	eng    *sim.Engine
	links  []*fabric.Link
	states []State
	missed []int // consecutive missed heartbeats per rail
	echoes []int // consecutive successful failback probes per rail
	seq    []uint64
	deadln []*sim.Event // pending probe-timeout events, one per rail
	ticker *sim.Ticker
	stop   bool

	// Gray scorer state (allocated always, driven only when Gray.Enabled).
	grayRate  []*metrics.EWMA // per-stream-normalized delivered rate per rail
	grayLat   []*metrics.EWMA // probe round-trip latency per rail
	ratio     []float64       // last cohort-relative rate ratio per rail
	breach    []int           // consecutive scoring breaches (hysteresis up)
	clear     []int           // consecutive clean scores (hysteresis down)
	grayDeg   []bool          // rail was Degraded by the scorer, not the link
	probeSent []sim.Time      // departure time of the outstanding probe
	firstSus  sim.Time        // earliest Suspect entry, -1 if never
}

// New builds a manager over the given rails and starts its heartbeat.
// Initial states are read from each link's current Fraction.
func New(eng *sim.Engine, links []*fabric.Link, pol Policy) *Manager {
	if len(links) == 0 {
		panic("railmgr: no rails")
	}
	pol = pol.withDefaults()
	m := &Manager{
		pol: pol, eng: eng, links: links,
		states:    make([]State, len(links)),
		missed:    make([]int, len(links)),
		echoes:    make([]int, len(links)),
		seq:       make([]uint64, len(links)),
		deadln:    make([]*sim.Event, len(links)),
		grayRate:  make([]*metrics.EWMA, len(links)),
		grayLat:   make([]*metrics.EWMA, len(links)),
		ratio:     make([]float64, len(links)),
		breach:    make([]int, len(links)),
		clear:     make([]int, len(links)),
		grayDeg:   make([]bool, len(links)),
		probeSent: make([]sim.Time, len(links)),
		firstSus:  -1,
	}
	for i := range links {
		m.grayRate[i] = metrics.NewEWMA(pol.Gray.Decay)
		m.grayLat[i] = metrics.NewEWMA(pol.Gray.Decay)
		m.ratio[i] = 1
	}
	for i, l := range links {
		switch f := l.Fraction(); {
		case f == 0:
			m.states[i] = Dead
		case f < 1:
			m.states[i] = Degraded
		default:
			m.states[i] = Healthy
		}
		i, l := i, l
		l.Watch(func(ev fabric.Event) { m.onLinkEvent(i, ev) })
	}
	m.ticker = eng.NewTicker(pol.ProbeEvery, m.tick)
	return m
}

// State returns rail i's classification.
func (m *Manager) State(i int) State { return m.states[i] }

// Usable reports whether rail i may carry streams.
func (m *Manager) Usable(i int) bool { return m.states[i].Usable() }

// UsableRails returns the indices of usable rails, ascending.
func (m *Manager) UsableRails() []int {
	var out []int
	for i, s := range m.states {
		if s.Usable() {
			out = append(out, i)
		}
	}
	return out
}

// Rails returns the number of managed rails.
func (m *Manager) Rails() int { return len(m.links) }

// Stop halts the heartbeat and cancels pending probe deadlines.
func (m *Manager) Stop() {
	if m.stop {
		return
	}
	m.stop = true
	m.ticker.Stop()
	for i := range m.deadln {
		if m.deadln[i] != nil {
			m.eng.Cancel(m.deadln[i])
			m.deadln[i] = nil
		}
	}
}

// onLinkEvent reacts to link-layer transitions.
func (m *Manager) onLinkEvent(i int, ev fabric.Event) {
	if m.stop {
		return
	}
	switch ev.Kind {
	case fabric.EventDown:
		m.transition(i, Dead)
	case fabric.EventUp:
		if m.states[i] == Dead {
			m.transition(i, Probing)
			m.echoes[i] = 0
			m.probe(i) // start re-admission immediately, not at the next tick
		}
	case fabric.EventDegraded:
		switch m.states[i] {
		case Healthy:
			if ev.Fraction < 1 {
				m.transition(i, Degraded)
			}
		case Degraded:
			if ev.Fraction >= 1 && !m.grayDeg[i] {
				m.transition(i, Healthy)
			}
		case Suspect:
			// A visible link-layer degrade outranks a statistical verdict.
			if ev.Fraction < 1 {
				m.grayDeg[i] = false
				m.transition(i, Degraded)
			}
		}
		// Dead/Probing: the standing fraction is picked up on re-admission.
	}
}

// tick is the heartbeat: probe every rail that is not Dead. Dead rails
// wait for the link-up event; probing them would only count drops.
func (m *Manager) tick(now sim.Time) {
	for i := range m.links {
		if m.states[i] != Dead && m.deadln[i] == nil {
			m.probe(i)
		}
	}
	if m.pol.Gray.Enabled {
		m.score(now)
	}
}

// probe sends one end-to-end echo on rail i and arms its deadline.
func (m *Manager) probe(i int) {
	if m.stop {
		return
	}
	m.seq[i]++
	seq := m.seq[i]
	l := m.links[i]
	timeout := m.pol.ProbeTimeout
	if min := 2 * l.RTT(); timeout < min {
		timeout = min
	}
	m.probeSent[i] = m.eng.Now()
	m.deadln[i] = m.eng.Schedule(timeout, func() {
		m.deadln[i] = nil
		m.probeMissed(i, seq)
	})
	l.Send(m.pol.ProbeBytes, func(sim.Time) {
		l.Send(m.pol.ProbeBytes, func(sim.Time) { m.probeEcho(i, seq) })
	})
	// A synchronous drop needs no special casing: the armed deadline
	// expires and counts the miss.
}

// probeEcho handles a returned probe.
func (m *Manager) probeEcho(i int, seq uint64) {
	if m.stop || seq != m.seq[i] {
		return // stale echo from before a state change
	}
	if m.deadln[i] != nil {
		m.eng.Cancel(m.deadln[i])
		m.deadln[i] = nil
	}
	m.missed[i] = 0
	if m.pol.Gray.Enabled {
		m.grayLat[i].Observe(float64(m.eng.Now() - m.probeSent[i]))
	}
	if m.states[i] != Probing {
		return
	}
	m.echoes[i]++
	if m.echoes[i] < m.pol.FailbackProbes {
		m.probe(i) // chain the next verification echo immediately
		return
	}
	// Re-admit at the rail's standing capacity fraction.
	if m.links[i].Fraction() < 1 {
		m.transition(i, Degraded)
	} else {
		m.transition(i, Healthy)
	}
}

// probeMissed handles an expired probe deadline.
func (m *Manager) probeMissed(i int, seq uint64) {
	if m.stop || seq != m.seq[i] {
		return
	}
	switch m.states[i] {
	case Healthy, Degraded, Suspect:
		// A Suspect rail is still subject to the binary detector: real
		// missed heartbeats kill it like any other live rail.
		m.missed[i]++
		if m.missed[i] >= m.pol.MissedProbes {
			m.transition(i, Dead)
		}
	case Probing:
		m.echoes[i] = 0 // verification restarts at the next heartbeat
	}
}

// transition applies a state change and notifies.
func (m *Manager) transition(i int, to State) {
	from := m.states[i]
	if from == to {
		return
	}
	m.states[i] = to
	m.missed[i] = 0
	if to != Probing {
		m.echoes[i] = 0
	}
	if m.deadln[i] != nil {
		m.eng.Cancel(m.deadln[i])
		m.deadln[i] = nil
	}
	m.breach[i], m.clear[i] = 0, 0
	switch {
	case to == Dead:
		m.Deaths++
		m.grayDeg[i] = false
	case from == Probing && to.Usable():
		m.Readmissions++
		// A re-admitted rail starts with a clean statistical slate: its
		// pre-outage rate history says nothing about the repaired path.
		m.grayRate[i].Reset()
		m.grayLat[i].Reset()
		m.ratio[i] = 1
		m.grayDeg[i] = false
	case to == Suspect:
		m.SuspectEntries++
		if m.firstSus < 0 {
			m.firstSus = m.eng.Now()
		}
	}
	now := m.eng.Now()
	m.Transitions = append(m.Transitions, Transition{Rail: i, From: from, To: to, At: now})
	m.eng.Tracef("railmgr", "rail %d (%s) %s -> %s", i, m.links[i].Cfg.Name, from, to)
	if m.OnTransition != nil {
		m.OnTransition(i, from, to, now)
	}
}

// History renders the transition log, one line per change (for reports).
func (m *Manager) History() string {
	out := ""
	for _, tr := range m.Transitions {
		out += fmt.Sprintf("%10.4fs  rail %d (%s): %s -> %s\n",
			float64(tr.At), tr.Rail, m.links[tr.Rail].Cfg.Name, tr.From, tr.To)
	}
	return out
}
