// Package tcpstack models the cost structure of kernel TCP/IP data
// transfer, the baseline the paper measures RDMA against.
//
// Each byte that crosses a TCP socket pays, per side:
//
//   - a user↔kernel copy: one memory read + one memory write, plus memcpy
//     CPU cycles (the copy_user_generic_string cost that dominates the
//     paper's perf profiles);
//   - kernel protocol processing cycles ("sys");
//   - interrupt/softirq handling cycles ("irq");
//   - application-level cycles ("user").
//
// The NIC then DMAs the kernel socket buffer, charging memory bandwidth a
// second time. With both copies and DMA, one transferred byte touches the
// sender's memory controllers three times — which is why the motivating
// experiment in §2.3 finds that a 400 Gbps STREAM machine supports at most
// ≈200 Gbps of TCP traffic.
//
// Window behaviour is modelled as a socket-buffer cap (rate ≤ buf/RTT) with
// an optional cubic-like convergence ramp, sufficient to reproduce
// wide-area starvation effects for under-buffered connections.
package tcpstack

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Params calibrates per-byte protocol costs. Cycle counts are per side
// (sender and receiver each pay them).
type Params struct {
	// SysCyclesPerByte is kernel TCP/IP protocol processing.
	SysCyclesPerByte float64
	// CopyCyclesPerByte is the user↔kernel memcpy cost.
	CopyCyclesPerByte float64
	// IRQCyclesPerByte is interrupt and softirq handling.
	IRQCyclesPerByte float64
	// UserCyclesPerByte is application-level socket handling.
	UserCyclesPerByte float64
	// SockBuf caps the in-flight window (bytes); 0 means unbounded.
	SockBuf float64
	// RampTime is the cubic-like time constant for converging to the
	// window cap after stream start; 0 disables ramping.
	RampTime sim.Duration
}

// DefaultParams returns per-byte costs calibrated jointly against the
// paper's Figure 4 breakdown (at 39 Gbps on 2.2 GHz cores: sys ≈ 311%,
// copy ≈ 213%, irq+user ≈ 48% CPU across both ends) and the §2.3
// motivating iperf numbers (one bound stream per link direction ≈ 15 Gbps,
// CPU-limited). The two constraints cannot be met exactly at once; these
// values land each within ~7% of the paper (see EXPERIMENTS.md).
func DefaultParams() Params {
	return Params{
		SysCyclesPerByte:  0.66,
		CopyCyclesPerByte: 0.45,
		IRQCyclesPerByte:  0.064,
		UserCyclesPerByte: 0.038,
		SockBuf:           64 * 1024 * 1024,
		RampTime:          0,
	}
}

// Conn is one TCP connection: a sender thread, a receiver thread, and the
// kernel socket buffers on each side.
type Conn struct {
	Params Params
	Link   *fabric.Link
	// SrcNIC is the sender-side link endpoint.
	SrcNIC  *host.Device
	SendThr *host.Thread
	RecvThr *host.Thread

	kbufS *numa.Buffer // sender kernel socket buffer
	kbufR *numa.Buffer // receiver kernel socket buffer
	sim   *fluid.Sim
	eng   *sim.Engine
	seq   int
}

// Dial creates a connection whose sender transmits from srcNIC's end of the
// link. Kernel socket buffers are placed on each thread's node (pinned
// threads) or interleaved across nodes (default-policy threads), matching
// first-touch allocation under each scheduling regime.
func Dial(l *fabric.Link, srcNIC *host.Device, send, recv *host.Thread, p Params) *Conn {
	if send == nil || recv == nil {
		panic("tcpstack: connection needs send and receive threads")
	}
	c := &Conn{
		Params: p, Link: l, SrcNIC: srcNIC,
		SendThr: send, RecvThr: recv,
		sim: l.Sim(), eng: l.Engine(),
	}
	c.kbufS = kernelBuffer(send, "skbuf-snd")
	c.kbufR = kernelBuffer(recv, "skbuf-rcv")
	return c
}

func kernelBuffer(t *host.Thread, name string) *numa.Buffer {
	m := t.Proc.Host.M
	if n := t.Node(); n != nil {
		return m.NewBuffer(name, n)
	}
	return m.InterleavedBuffer(name)
}

// windowCap returns the rate limit imposed by the socket buffer.
func (c *Conn) windowCap() float64 {
	if c.Params.SockBuf <= 0 || c.Link.RTT() <= 0 {
		return math.Inf(1)
	}
	return c.Params.SockBuf / float64(c.Link.RTT())
}

// FlowOptions tune how a stream charges the hosts.
type FlowOptions struct {
	// SrcBuf is the application source buffer; nil models a cache-resident
	// source (iperf's default small reused buffer) that costs no memory
	// reads.
	SrcBuf *numa.Buffer
	// DstBuf is the application destination buffer; nil models a
	// discarding sink (/dev/null) with no final copy-out... the kernel→
	// user copy is still paid; nil only skips placement-specific charges
	// by using the receiver kernel buffer as the destination.
	DstBuf *numa.Buffer
	// Tag prefixes accounting categories (defaults handled by threads'
	// process names).
	Tag string
	// Extra, when non-nil, attaches additional charges to the flow
	// (application data generation, page-cache traffic, ...).
	Extra func(f *fluid.Flow)
}

// NewFlow builds a fluid flow with the full TCP cost structure attached.
// Callers wrap it in a fluid.Transfer (or use Stream).
func (c *Conn) NewFlow(opt FlowOptions) *fluid.Flow {
	c.seq++
	f := c.sim.NewFlow(fmt.Sprintf("tcp/%s/%d", c.Link.Cfg.Name, c.seq), c.windowCap())
	c.charge(f, opt)
	return f
}

// Recharge re-derives the flow's cost coefficients from the connection's
// current placement: kernel socket buffers follow their thread's present
// node (pinned) or go interleaved (unpinned), and every per-byte charge is
// re-attached. It is the rebuild hook handed to the adaptive placer; the
// caller (the placer) is responsible for clearing f.Uses first and
// invalidating the fluid network afterwards.
func (c *Conn) Recharge(f *fluid.Flow, opt FlowOptions) {
	c.kbufS.Rehome(homesFor(c.SendThr)...)
	c.kbufR.Rehome(homesFor(c.RecvThr)...)
	c.charge(f, opt)
}

// homesFor returns the node set first-touch allocation would pick for the
// thread's kernel buffer today: its pinned node, or all nodes when unbound.
func homesFor(t *host.Thread) []*numa.Node {
	if n := t.Node(); n != nil {
		return []*numa.Node{n}
	}
	return t.Proc.Host.M.Nodes
}

// charge attaches the full per-byte TCP cost structure to f.
func (c *Conn) charge(f *fluid.Flow, opt FlowOptions) {
	// Sender side: user→kernel copy, protocol, DMA out.
	src := opt.SrcBuf
	if src == nil {
		// Cache-resident source: only the kernel buffer write is paid.
		c.SendThr.ChargeMemory(f, c.kbufS, 1, true, host.CatCopy)
		c.SendThr.ChargeCPU(f, c.Params.CopyCyclesPerByte*c.SendThr.MemoryPenalty(c.kbufS, true), host.CatCopy)
	} else {
		c.SendThr.ChargeCopy(f, src, c.kbufS, 1, c.Params.CopyCyclesPerByte, host.CatCopy)
	}
	c.SendThr.ChargeCPU(f, c.Params.SysCyclesPerByte*c.SendThr.MemoryPenalty(c.kbufS, false), host.CatSys)
	c.SendThr.ChargeCPU(f, c.Params.IRQCyclesPerByte, host.CatIRQ)
	c.SendThr.ChargeCPU(f, c.Params.UserCyclesPerByte, host.CatUser)
	c.SrcNIC.ChargeDMA(f, c.kbufS, 1, false, "dma")

	// Wire.
	c.Link.ChargeWire(f, c.SrcNIC, 1, "net")

	// Receiver side: DMA in, protocol, kernel→user copy.
	dstNIC := c.Link.Peer(c.SrcNIC)
	dstNIC.ChargeDMA(f, c.kbufR, 1, true, "dma")
	c.RecvThr.ChargeCPU(f, c.Params.SysCyclesPerByte*c.RecvThr.MemoryPenalty(c.kbufR, false), host.CatSys)
	c.RecvThr.ChargeCPU(f, c.Params.IRQCyclesPerByte, host.CatIRQ)
	c.RecvThr.ChargeCPU(f, c.Params.UserCyclesPerByte, host.CatUser)
	dst := opt.DstBuf
	if dst == nil {
		// Discarding sink: kernel→user copy still reads the kernel buffer
		// and touches a (cache-resident) user buffer.
		c.RecvThr.ChargeMemory(f, c.kbufR, 1, false, host.CatCopy)
		c.RecvThr.ChargeCPU(f, c.Params.CopyCyclesPerByte*c.RecvThr.MemoryPenalty(c.kbufR, false), host.CatCopy)
	} else {
		c.RecvThr.ChargeCopy(f, c.kbufR, dst, 1, c.Params.CopyCyclesPerByte, host.CatCopy)
	}
	if opt.Extra != nil {
		opt.Extra(f)
	}
}

// Stream starts a transfer of size bytes (math.Inf(1) for an open-ended
// stream) and returns the fluid transfer for observation. When RampTime is
// positive, the flow's demand converges to the window cap with an
// exponential ramp sampled every RampTime/8.
func (c *Conn) Stream(size float64, opt FlowOptions, onDone func(now sim.Time)) *fluid.Transfer {
	f := c.NewFlow(opt)
	tr := &fluid.Transfer{Flow: f, Remaining: size, OnComplete: onDone}
	if c.Params.RampTime > 0 {
		cap := c.windowCap()
		if math.IsInf(cap, 1) {
			cap = c.Link.Cfg.Rate
		}
		f.Demand = cap / 16
		start := c.eng.Now()
		tau := float64(c.Params.RampTime)
		var tick *sim.Ticker
		tick = c.eng.NewTicker(c.Params.RampTime/8, func(now sim.Time) {
			if !tr.Active() {
				tick.Stop()
				return
			}
			age := float64(now - start)
			ramp := 1 - math.Exp(-age/tau)
			c.sim.SetDemand(f, math.Max(cap/16, cap*ramp))
		})
	}
	c.sim.Start(tr)
	return tr
}
