package tcpstack

import (
	"math"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

type rig struct {
	eng  *sim.Engine
	s    *fluid.Sim
	ha   *host.Host
	hb   *host.Host
	link *fabric.Link
}

func newRig(t *testing.T, linkCfg fabric.Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	cfg := numa.Config{
		Name: "m", Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
	}
	ca, cb := cfg, cfg
	ca.Name, cb.Name = "A", "B"
	ha := host.New("A", numa.MustNew(s, ca))
	hb := host.New("B", numa.MustNew(s, cb))
	l := fabric.Connect(s, linkCfg, ha, ha.M.Node(0), hb, hb.M.Node(0))
	return &rig{eng: eng, s: s, ha: ha, hb: hb, link: l}
}

func lanCfg() fabric.Config {
	return fabric.Config{Name: "roce", Rate: units.FromGbps(40), RTT: 0.166e-3}
}

func (r *rig) boundConn(p Params) *Conn {
	ps := r.ha.NewProcess("snd", numa.PolicyBind, r.ha.M.Node(0))
	pr := r.hb.NewProcess("rcv", numa.PolicyBind, r.hb.M.Node(0))
	return Dial(r.link, r.link.A, ps.NewThread(), pr.NewThread(), p)
}

func TestStreamReachesNearLineRate(t *testing.T) {
	r := newRig(t, lanCfg())
	c := r.boundConn(DefaultParams())
	tr := c.Stream(math.Inf(1), FlowOptions{}, nil)
	r.eng.RunUntil(10)
	r.s.Sync()
	got := units.ToGbps(tr.Transferred() / 10)
	// Single bound stream: CPU at ~1.3 cyc/B per side on a 2.2 GHz core
	// caps below line rate; expect >10 Gbps and ≤40 Gbps.
	if got < 10 || got > 40 {
		t.Fatalf("TCP stream = %.1f Gbps, want within (10,40]", got)
	}
}

func TestCPUBreakdownShape(t *testing.T) {
	// At a fixed rate, sys > copy > irq > user, mirroring Figure 4.
	r := newRig(t, lanCfg())
	c := r.boundConn(DefaultParams())
	c.Stream(math.Inf(1), FlowOptions{}, nil)
	r.eng.RunUntil(10)
	snd := r.ha.Processes()[0].CPUReport()
	rcv := r.hb.Processes()[0].CPUReport()
	for _, rep := range []host.CPUReport{snd, rcv} {
		if !(rep.ByCategory[host.CatSys] > rep.ByCategory[host.CatCopy]) {
			t.Fatalf("sys (%v) should exceed copy (%v)", rep.ByCategory[host.CatSys], rep.ByCategory[host.CatCopy])
		}
		if !(rep.ByCategory[host.CatCopy] > rep.ByCategory[host.CatIRQ]) {
			t.Fatalf("copy should exceed irq: %v", rep.ByCategory)
		}
		if !(rep.ByCategory[host.CatIRQ] > rep.ByCategory[host.CatUser]) {
			t.Fatalf("irq should exceed user: %v", rep.ByCategory)
		}
	}
}

func TestFigure4CPURatios(t *testing.T) {
	// Drive a stream at the paper's 39 Gbps operating point by widening
	// CPU capacity (multiple streams) and verify aggregate cost ratios:
	// sys ≈ 311%, copy ≈ 213% across both ends at 39 Gbps.
	r := newRig(t, lanCfg())
	ps := r.ha.NewProcess("snd", numa.PolicyBind, r.ha.M.Node(0))
	pr := r.hb.NewProcess("rcv", numa.PolicyBind, r.hb.M.Node(0))
	for i := 0; i < 4; i++ {
		c := Dial(r.link, r.link.A, ps.NewThread(), pr.NewThread(), DefaultParams())
		c.Stream(math.Inf(1), FlowOptions{}, nil)
	}
	r.eng.RunUntil(10)
	r.s.Sync()
	rate := 0.0
	for _, f := range r.s.Network.Flows() {
		rate += f.Rate()
	}
	gbps := units.ToGbps(rate)
	if gbps < 38 {
		t.Fatalf("aggregate = %.1f Gbps, want ≈39 (link-limited)", gbps)
	}
	snd := ps.CPUReport()
	rcv := pr.CPUReport()
	sysPct := (snd.ByCategory[host.CatSys] + rcv.ByCategory[host.CatSys]) / 10 * 100
	copyPct := (snd.ByCategory[host.CatCopy] + rcv.ByCategory[host.CatCopy]) / 10 * 100
	// Scale expectation to the achieved rate. The calibration compromises
	// between Figure 4 (sys 311%, copy 213%) and §2.3; accept ±10%.
	scale := gbps / 39
	if math.Abs(sysPct-311*scale) > 31 {
		t.Fatalf("sys%% = %.0f, want ≈%.0f", sysPct, 311*scale)
	}
	if math.Abs(copyPct-213*scale) > 22 {
		t.Fatalf("copy%% = %.0f, want ≈%.0f", copyPct, 213*scale)
	}
}

func TestNUMABindingImprovesThroughput(t *testing.T) {
	// An unpinned sender pays remote-access penalties; a pinned one does
	// not. Mirrors the §2.3 iperf observation (~10% gain from binding).
	run := func(policy numa.Policy) float64 {
		r := newRig(t, lanCfg())
		ps := r.ha.NewProcess("snd", policy, r.ha.M.Node(0))
		pr := r.hb.NewProcess("rcv", policy, r.hb.M.Node(0))
		c := Dial(r.link, r.link.A, ps.NewThread(), pr.NewThread(), DefaultParams())
		tr := c.Stream(math.Inf(1), FlowOptions{}, nil)
		r.eng.RunUntil(10)
		r.s.Sync()
		return tr.Transferred() / 10
	}
	bound := run(numa.PolicyBind)
	unpinned := run(numa.PolicyDefault)
	if bound <= unpinned {
		t.Fatalf("bound (%v) should beat unpinned (%v)", bound, unpinned)
	}
	gain := bound / unpinned
	if gain < 1.03 || gain > 1.6 {
		t.Fatalf("binding gain = %.2f×, want a modest (3%%–60%%) improvement", gain)
	}
}

func TestWindowCapLimitsWAN(t *testing.T) {
	wan := fabric.Config{Name: "wan", Rate: units.FromGbps(40), RTT: 0.095}
	r := newRig(t, wan)
	p := DefaultParams()
	p.SockBuf = 64 * float64(units.MB)
	c := r.boundConn(p)
	tr := c.Stream(math.Inf(1), FlowOptions{}, nil)
	r.eng.RunUntil(10)
	r.s.Sync()
	got := tr.Transferred() / 10
	want := p.SockBuf / 0.095
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("WAN rate = %v, want window-capped %v", got, want)
	}
}

func TestUnboundedWindow(t *testing.T) {
	cfgNoRTT := fabric.Config{Name: "l", Rate: units.FromGbps(40)}
	r := newRig(t, cfgNoRTT)
	p := DefaultParams()
	p.SockBuf = 0
	c := r.boundConn(p)
	if !math.IsInf(c.windowCap(), 1) {
		t.Fatal("zero SockBuf should mean unbounded window")
	}
}

func TestRampConvergesToCap(t *testing.T) {
	wan := fabric.Config{Name: "wan", Rate: units.FromGbps(40), RTT: 0.095}
	r := newRig(t, wan)
	p := DefaultParams()
	p.SockBuf = 64 * float64(units.MB)
	p.RampTime = 1
	c := r.boundConn(p)
	tr := c.Stream(math.Inf(1), FlowOptions{}, nil)
	r.eng.RunUntil(1)
	r.s.Sync()
	early := tr.Transferred()
	r.eng.RunUntil(11)
	r.s.Sync()
	late := tr.Transferred() - early
	cap := p.SockBuf / 0.095
	// First second is ramping: clearly below cap; last 10s near cap.
	if early >= cap*0.9 {
		t.Fatalf("first-second volume %v too close to cap %v (no ramp)", early, cap)
	}
	if late < cap*10*0.9 {
		t.Fatalf("post-ramp volume %v below 90%% of cap %v", late, cap*10)
	}
}

func TestRampStopsAfterFiniteTransfer(t *testing.T) {
	r := newRig(t, lanCfg())
	p := DefaultParams()
	p.RampTime = 0.5
	c := r.boundConn(p)
	done := false
	c.Stream(float64(10*units.MB), FlowOptions{}, func(sim.Time) { done = true })
	r.eng.RunUntil(30)
	if !done {
		t.Fatal("finite ramped stream never completed")
	}
	// Ticker must have stopped; engine should drain.
	r.eng.RunFor(5)
	if r.eng.Pending() > 0 {
		t.Fatalf("%d events still pending after stream end (leaked ticker?)", r.eng.Pending())
	}
}

func TestCacheResidentSourceCheaperThanMemorySource(t *testing.T) {
	// iperf default (cache-resident) vs. big-buffer source: the latter
	// reads real memory and costs controller bandwidth.
	run := func(withBuf bool) float64 {
		r := newRig(t, lanCfg())
		c := r.boundConn(DefaultParams())
		opt := FlowOptions{}
		if withBuf {
			opt.SrcBuf = r.ha.M.NewBuffer("big", r.ha.M.Node(0))
		}
		c.Stream(math.Inf(1), opt, nil)
		r.eng.RunUntil(5)
		r.s.Sync()
		return r.ha.M.Node(0).Mem.Load()
	}
	noBuf := run(false)
	withBuf := run(true)
	if withBuf <= noBuf {
		t.Fatalf("memory-sourced stream (%v) should load controller more than cached (%v)", withBuf, noBuf)
	}
}

func TestThreeCopiesPerByteOnSender(t *testing.T) {
	// With an application source buffer, each payload byte should touch
	// the sender's memory controllers ~3×: app read, kernel write, DMA
	// read (all node-local here).
	r := newRig(t, lanCfg())
	c := r.boundConn(DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	tr := c.Stream(math.Inf(1), FlowOptions{SrcBuf: src}, nil)
	r.eng.RunUntil(5)
	r.s.Sync()
	bytes := tr.Transferred()
	memLoad := r.s.Usage(r.ha.M.Node(0).Mem, "snd:copy") + r.s.Usage(r.ha.M.Node(0).Mem, "dma")
	ratio := memLoad / bytes
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("sender memory traffic ratio = %.2f, want ≈3", ratio)
	}
}

func TestDialValidation(t *testing.T) {
	r := newRig(t, lanCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil threads")
		}
	}()
	Dial(r.link, r.link.A, nil, nil, DefaultParams())
}
