package blockdev

import (
	"math"
	"testing"

	"e2edt/internal/fluid"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

func testSim(t *testing.T) (*sim.Engine, *fluid.Sim, *numa.Machine) {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	m := numa.MustNew(s, numa.Config{
		Name: "m", Nodes: 2, CoresPerNode: 8, CoreHz: 2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
		MemBytes: 384 * units.GB,
	})
	return eng, s, m
}

func TestRamdiskPinnedToNode(t *testing.T) {
	_, _, m := testSim(t)
	r := NewRamdisk(m, "lun0", 50*units.GB, m.Node(1))
	if r.Name() != "lun0" || r.Size() != 50*units.GB {
		t.Fatal("ramdisk metadata wrong")
	}
	buf := r.MemoryBuffer()
	if buf == nil || !buf.Local(m.Node(1)) {
		t.Fatal("ramdisk buffer should be pinned to node 1")
	}
	if r.AccessLatency() <= 0 {
		t.Fatal("ramdisk latency must be positive")
	}
}

func TestRamdiskDefaultInterleaved(t *testing.T) {
	_, _, m := testSim(t)
	r := NewRamdisk(m, "lun", units.GB)
	if len(r.MemoryBuffer().Homes) != 2 {
		t.Fatal("default ramdisk should interleave across all nodes")
	}
}

func TestRamdiskExceedingMemoryPanics(t *testing.T) {
	_, _, m := testSim(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized ramdisk")
		}
	}()
	NewRamdisk(m, "big", 400*units.GB, m.Node(0))
}

func TestRamdiskAttachIONoMediaCharge(t *testing.T) {
	_, s, m := testSim(t)
	r := NewRamdisk(m, "lun", units.GB, m.Node(0))
	f := s.NewFlow("f", 10)
	r.AttachIO(f, false, 4*units.MB, 1, "io")
	if len(f.Uses) != 0 {
		t.Fatal("ramdisk should not add media resources")
	}
}

func TestSSDHealthyBandwidth(t *testing.T) {
	eng, s, _ := testSim(t)
	d := NewSSD(s, DefaultSSDConfig("ssd0", units.TB))
	f := s.NewFlow("f", math.Inf(1))
	d.AttachIO(f, false, 4*units.MB, 1, "io")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(5)
	s.Sync()
	got := f.Rate()
	if got < 1.4*units.GBps || got > 1.5*units.GBps {
		t.Fatalf("healthy SSD read = %v, want ≈1.5 GB/s", units.ToGBps(got))
	}
	if d.Throttled() {
		t.Fatal("SSD throttled too early")
	}
}

func TestSSDThermalThrottleKicksIn(t *testing.T) {
	eng, s, _ := testSim(t)
	cfg := DefaultSSDConfig("ssd0", units.TB)
	d := NewSSD(s, cfg)
	f := s.NewFlow("f", math.Inf(1))
	d.AttachIO(f, true, 4*units.MB, 1, "io")
	tr := &fluid.Transfer{Flow: f, Remaining: math.Inf(1)}
	s.Start(tr)
	// 100 GB at 1.3 GB/s ≈ 77 s to exhaust the thermal budget.
	eng.RunUntil(200)
	s.Sync()
	if !d.Throttled() {
		t.Fatal("sustained writes should trigger thermal throttling")
	}
	before := tr.Transferred()
	eng.RunUntil(210)
	s.Sync()
	rate := (tr.Transferred() - before) / 10
	if math.Abs(rate-cfg.ThrottledBandwidth) > 0.01*cfg.ThrottledBandwidth {
		t.Fatalf("throttled rate = %v MB/s, want ≈500", units.ToMBps(rate))
	}
}

func TestSSDRecoversAfterCooldown(t *testing.T) {
	eng, s, _ := testSim(t)
	cfg := DefaultSSDConfig("ssd0", units.TB)
	cfg.CooldownSeconds = 10
	d := NewSSD(s, cfg)
	f := s.NewFlow("f", math.Inf(1))
	d.AttachIO(f, true, 4*units.MB, 1, "io")
	// Write ~110 GB then stop. The budget (100 GB) runs out after ≈77 s at
	// 1.3 GB/s; the remaining ~10 GB drain at 500 MB/s until ≈97 s.
	tr := &fluid.Transfer{Flow: f, Remaining: 110 * float64(units.GB)}
	s.Start(tr)
	eng.RunUntil(100)
	if !d.Throttled() {
		t.Fatal("expected throttling during the burst")
	}
	// Idle past the cooldown: governor restores full speed.
	eng.RunUntil(150)
	if d.Throttled() {
		t.Fatal("SSD should recover after idle cooldown")
	}
}

func TestSSDSmallBlocksLessEfficient(t *testing.T) {
	eng, s, _ := testSim(t)
	d := NewSSD(s, DefaultSSDConfig("ssd0", units.TB))
	small := s.NewFlow("small", math.Inf(1))
	d.AttachIO(small, false, 8*units.KB, 1, "io")
	s.Start(&fluid.Transfer{Flow: small, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	smallRate := small.Rate()
	if smallRate >= 1.2*units.GBps {
		t.Fatalf("8KB reads at %v should be well below media rate", units.ToGBps(smallRate))
	}
}

func TestHDDSeekBoundSmallBlocks(t *testing.T) {
	eng, s, _ := testSim(t)
	d := NewHDD(s, DefaultHDDConfig("hdd0", 4*units.TB))
	// 64 KB blocks: transfer 0.44 ms vs seek 8 ms → ~5% efficiency.
	f := s.NewFlow("f", math.Inf(1))
	d.AttachIO(f, false, 64*units.KB, 1, "io")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	got := f.Rate()
	xfer := float64(64*units.KB) / (150 * units.MBps)
	want := 150 * units.MBps * xfer / (xfer + 8e-3)
	if math.Abs(got-want)/want > 0.01 {
		t.Fatalf("64KB HDD rate = %v, want %v", got, want)
	}
	if got > 0.15*150*units.MBps {
		t.Fatalf("small-block HDD rate %v suspiciously high", got)
	}
}

func TestHDDSequentialLargeBlocks(t *testing.T) {
	eng, s, _ := testSim(t)
	d := NewHDD(s, DefaultHDDConfig("hdd0", 4*units.TB))
	f := s.NewFlow("f", math.Inf(1))
	d.AttachIO(f, false, 256*units.MB, 1, "io")
	s.Start(&fluid.Transfer{Flow: f, Remaining: math.Inf(1)})
	eng.RunUntil(1)
	s.Sync()
	if got := f.Rate(); got < 0.99*150*units.MBps*0.995 {
		t.Fatalf("large-block HDD rate = %v, want ≈150 MB/s", units.ToMBps(got))
	}
}

func TestDeviceInterfaceCompliance(t *testing.T) {
	eng, s, m := testSim(t)
	_ = eng
	devices := []Device{
		NewRamdisk(m, "ram", units.GB, m.Node(0)),
		NewSSD(s, DefaultSSDConfig("ssd", units.TB)),
		NewHDD(s, DefaultHDDConfig("hdd", units.TB)),
	}
	for _, d := range devices {
		if d.Name() == "" || d.Size() <= 0 {
			t.Fatalf("device %T metadata broken", d)
		}
		if d.AccessLatency() <= 0 {
			t.Fatalf("device %T has non-positive latency", d)
		}
	}
	if devices[0].MemoryBuffer() == nil {
		t.Fatal("ramdisk must expose a memory buffer")
	}
	if devices[1].MemoryBuffer() != nil || devices[2].MemoryBuffer() != nil {
		t.Fatal("media devices must not expose memory buffers")
	}
}

func TestInvalidConfigsPanic(t *testing.T) {
	eng, s, m := testSim(t)
	_ = eng
	cases := []func(){
		func() { NewRamdisk(m, "bad", 0, m.Node(0)) },
		func() { NewSSD(s, SSDConfig{Name: "bad"}) },
		func() { NewHDD(s, HDDConfig{Name: "bad"}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBlockEfficiencyMonotonic(t *testing.T) {
	prev := 0.0
	for _, bs := range []int64{4 * units.KB, 64 * units.KB, units.MB, 4 * units.MB, 16 * units.MB} {
		eff := blockEfficiency(bs, 8*units.KB)
		if eff <= prev {
			t.Fatalf("efficiency not monotonic at %s: %v ≤ %v", units.FormatBytes(bs), eff, prev)
		}
		if eff > 1 {
			t.Fatalf("efficiency > 1 at %s", units.FormatBytes(bs))
		}
		prev = eff
	}
	if blockEfficiency(0, 8*units.KB) != 1 || blockEfficiency(units.MB, 0) != 1 {
		t.Fatal("degenerate inputs should return 1")
	}
}
