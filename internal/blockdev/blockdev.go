// Package blockdev models back-end storage media: NUMA-pinned RAM disks
// (the paper's tmpfs LUNs), flash SSDs with thermal throttling (the
// Fusion-IO drives the authors abandoned in §4.1), and magnetic disks.
//
// A device contributes two things to a data flow: its internal media
// bandwidth (with a small-block efficiency penalty for seek/flash-page
// overhead), and — for memory-backed devices — the NUMA placement of its
// backing pages, which the accessing layer (iSER target, filesystem)
// charges through the numa package.
package blockdev

import (
	"fmt"

	"e2edt/internal/fluid"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// Device is the common interface for storage media.
type Device interface {
	// Name identifies the device.
	Name() string
	// Size is the device capacity in bytes.
	Size() int64
	// AttachIO charges device-internal costs (media bandwidth) for
	// streaming I/O at the given block size onto flow f, scaled by share
	// (bytes of device traffic per flow-byte; 1 for a dedicated flow).
	AttachIO(f *fluid.Flow, write bool, blockSize int64, share float64, tag string)
	// MemoryBuffer returns the NUMA buffer backing a memory device, or
	// nil for media devices.
	MemoryBuffer() *numa.Buffer
	// AccessLatency is the per-request latency.
	AccessLatency() sim.Duration
}

// Ramdisk is a tmpfs-style memory-backed device pinned to NUMA nodes via
// the mpol mount option. Its bandwidth is the host's memory bandwidth; the
// accessor charges it through the returned buffer.
type Ramdisk struct {
	name string
	size int64
	buf  *numa.Buffer
}

// NewRamdisk creates a memory-backed device on the given nodes (one node =
// mpol=bind, all nodes = mpol=interleave).
func NewRamdisk(m *numa.Machine, name string, size int64, homes ...*numa.Node) *Ramdisk {
	if size <= 0 {
		panic(fmt.Sprintf("blockdev: ramdisk %s needs positive size", name))
	}
	if m.Cfg.MemBytes > 0 && size > m.Cfg.MemBytes {
		panic(fmt.Sprintf("blockdev: ramdisk %s (%s) exceeds installed memory (%s)",
			name, units.FormatBytes(size), units.FormatBytes(m.Cfg.MemBytes)))
	}
	if len(homes) == 0 {
		homes = m.Nodes
	}
	return &Ramdisk{name: name, size: size, buf: m.NewBuffer(name, homes...)}
}

// Name implements Device.
func (r *Ramdisk) Name() string { return r.name }

// Size implements Device.
func (r *Ramdisk) Size() int64 { return r.size }

// AttachIO implements Device: a ramdisk adds no media constraint beyond
// the memory controllers already charged via MemoryBuffer.
func (r *Ramdisk) AttachIO(f *fluid.Flow, write bool, blockSize int64, share float64, tag string) {}

// MemoryBuffer implements Device.
func (r *Ramdisk) MemoryBuffer() *numa.Buffer { return r.buf }

// AccessLatency implements Device: DRAM-class.
func (r *Ramdisk) AccessLatency() sim.Duration { return 2 * sim.Microsecond }

// SSDConfig parameterizes a flash device.
type SSDConfig struct {
	Name string
	Size int64
	// ReadBandwidth/WriteBandwidth are the healthy media rates.
	ReadBandwidth, WriteBandwidth float64
	// ThrottledBandwidth is the rate under thermal protection (the paper
	// observed ≈500 MB/s).
	ThrottledBandwidth float64
	// ThermalBudgetBytes is how much sustained I/O the device absorbs
	// before throttling (the paper hit it after ~100 GB of continuous
	// I/O).
	ThermalBudgetBytes float64
	// CooldownSeconds restores full speed after this long below
	// DutyCycleThreshold utilization.
	CooldownSeconds float64
	// PageBytes is the flash page size driving small-block inefficiency.
	PageBytes int64
	// Latency is per-request access latency.
	Latency sim.Duration
}

// DefaultSSDConfig resembles the paper's PCIe flash drives.
func DefaultSSDConfig(name string, size int64) SSDConfig {
	return SSDConfig{
		Name: name, Size: size,
		ReadBandwidth:      1.5 * units.GBps,
		WriteBandwidth:     1.3 * units.GBps,
		ThrottledBandwidth: 500 * units.MBps,
		ThermalBudgetBytes: 100 * float64(units.GB),
		CooldownSeconds:    60,
		PageBytes:          8 * units.KB,
		Latency:            60 * sim.Microsecond,
	}
}

// SSD is a flash device with a thermal-throttling governor: sustained I/O
// beyond the thermal budget drops the media rate to ThrottledBandwidth
// until the device has idled for CooldownSeconds.
type SSD struct {
	cfg       SSDConfig
	sim       *fluid.Sim
	readRes   *fluid.Resource
	writeRes  *fluid.Resource
	heat      float64 // bytes of recent I/O, decays during idle
	throttled bool
	idleSecs  float64
	lastRead  float64
	lastWrite float64
	ticker    *sim.Ticker
}

// NewSSD registers a flash device with the simulator. The governor samples
// device activity once per simulated second.
func NewSSD(s *fluid.Sim, cfg SSDConfig) *SSD {
	if cfg.Size <= 0 || cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 {
		panic(fmt.Sprintf("blockdev: invalid SSD config %+v", cfg))
	}
	d := &SSD{
		cfg:      cfg,
		sim:      s,
		readRes:  s.AddResource(cfg.Name+"/read", cfg.ReadBandwidth),
		writeRes: s.AddResource(cfg.Name+"/write", cfg.WriteBandwidth),
	}
	d.ticker = s.Engine.NewTicker(sim.Second, func(sim.Time) { d.govern() })
	return d
}

// govern updates thermal state from the last second of media activity.
func (d *SSD) govern() {
	d.sim.Sync()
	r := d.sim.Usage(d.readRes, "media")
	w := d.sim.Usage(d.writeRes, "media")
	delta := (r - d.lastRead) + (w - d.lastWrite)
	d.lastRead, d.lastWrite = r, w
	d.heat += delta
	busy := delta > 0.05*d.cfg.ThrottledBandwidth
	if busy {
		d.idleSecs = 0
	} else {
		d.idleSecs++
		// Idle seconds shed heat.
		d.heat -= d.cfg.ThermalBudgetBytes / d.cfg.CooldownSeconds
		if d.heat < 0 {
			d.heat = 0
		}
	}
	switch {
	case !d.throttled && d.heat >= d.cfg.ThermalBudgetBytes:
		d.throttled = true
		d.sim.SetCapacity(d.readRes, d.cfg.ThrottledBandwidth)
		d.sim.SetCapacity(d.writeRes, d.cfg.ThrottledBandwidth)
	case d.throttled && d.idleSecs >= d.cfg.CooldownSeconds:
		d.throttled = false
		d.heat = 0
		d.sim.SetCapacity(d.readRes, d.cfg.ReadBandwidth)
		d.sim.SetCapacity(d.writeRes, d.cfg.WriteBandwidth)
	}
}

// Throttled reports whether thermal protection is active.
func (d *SSD) Throttled() bool { return d.throttled }

// Name implements Device.
func (d *SSD) Name() string { return d.cfg.Name }

// Size implements Device.
func (d *SSD) Size() int64 { return d.cfg.Size }

// AttachIO implements Device.
func (d *SSD) AttachIO(f *fluid.Flow, write bool, blockSize int64, share float64, tag string) {
	if share <= 0 {
		return
	}
	eff := blockEfficiency(blockSize, d.cfg.PageBytes)
	res := d.readRes
	if write {
		res = d.writeRes
	}
	f.UseTagged(res, share/eff, "media")
}

// MemoryBuffer implements Device: flash is not host memory.
func (d *SSD) MemoryBuffer() *numa.Buffer { return nil }

// AccessLatency implements Device.
func (d *SSD) AccessLatency() sim.Duration { return d.cfg.Latency }

// HDDConfig parameterizes a magnetic disk.
type HDDConfig struct {
	Name string
	Size int64
	// SequentialBandwidth is the streaming media rate.
	SequentialBandwidth float64
	// SeekTime is the average positioning time charged per request.
	SeekTime sim.Duration
}

// DefaultHDDConfig resembles a 7200 RPM SAS drive.
func DefaultHDDConfig(name string, size int64) HDDConfig {
	return HDDConfig{
		Name: name, Size: size,
		SequentialBandwidth: 150 * units.MBps,
		SeekTime:            8 * sim.Millisecond,
	}
}

// HDD is a magnetic disk: streaming bandwidth with a per-request seek cost
// folded into a block-size-dependent efficiency.
type HDD struct {
	cfg HDDConfig
	res *fluid.Resource
}

// NewHDD registers a magnetic disk.
func NewHDD(s *fluid.Sim, cfg HDDConfig) *HDD {
	if cfg.Size <= 0 || cfg.SequentialBandwidth <= 0 {
		panic(fmt.Sprintf("blockdev: invalid HDD config %+v", cfg))
	}
	return &HDD{cfg: cfg, res: s.AddResource(cfg.Name+"/media", cfg.SequentialBandwidth)}
}

// Name implements Device.
func (d *HDD) Name() string { return d.cfg.Name }

// Size implements Device.
func (d *HDD) Size() int64 { return d.cfg.Size }

// AttachIO implements Device: effective rate for block size B is
// B / (B/rate + seek), expressed as an inflated media coefficient.
func (d *HDD) AttachIO(f *fluid.Flow, write bool, blockSize int64, share float64, tag string) {
	if share <= 0 {
		return
	}
	if blockSize <= 0 {
		blockSize = units.MB
	}
	xfer := float64(blockSize) / d.cfg.SequentialBandwidth
	eff := xfer / (xfer + float64(d.cfg.SeekTime))
	f.UseTagged(d.res, share/eff, "media")
}

// MemoryBuffer implements Device.
func (d *HDD) MemoryBuffer() *numa.Buffer { return nil }

// AccessLatency implements Device.
func (d *HDD) AccessLatency() sim.Duration { return d.cfg.SeekTime }

// blockEfficiency returns the fraction of media bandwidth usable at the
// given block size for a device with fixed per-page overhead.
func blockEfficiency(blockSize, pageBytes int64) float64 {
	if blockSize <= 0 || pageBytes <= 0 {
		return 1
	}
	// Overhead of ~2% per page, amortized over larger blocks.
	pages := float64(blockSize) / float64(pageBytes)
	if pages < 1 {
		pages = 1
	}
	return pages / (pages + 0.5)
}
