package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a cumulative value (bytes delivered, messages dropped). It is
// the registry's cheapest instrument: cluster simulations keep one per host
// per quantity, so it must be a bare float, not a sampler with a ticker.
type Counter struct {
	Name string
	v    float64
}

// Add accumulates d into the counter.
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the accumulated total.
func (c *Counter) Value() float64 { return c.v }

// Registry is a named collection of instruments (counters, series,
// histograms). The single-endpoint harnesses that came before the cluster
// fabric kept ad-hoc package-level instruments, which assume exactly one
// endpoint process per simulation: a thousand simulated hosts all
// registering "delivered_bytes" would collide. The registry makes the
// namespace explicit — each host works inside Namespace("host0042"), and
// per-host registries Merge into one cluster registry for reporting without
// collisions.
//
// Registration is collision-checked: registering a fully-qualified name
// twice is an error, because two owners silently sharing one instrument is
// exactly the bug the cluster report path must not have.
type Registry struct {
	prefix string
	core   *registryCore
}

// registryCore is the storage shared by a registry and its namespace views.
type registryCore struct {
	entries map[string]any
	order   []string
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{entries: make(map[string]any)}}
}

// Namespace returns a view of the registry that prefixes every registered
// name with name+"/". Views share storage with the root: instruments
// registered through a view are visible (fully qualified) on the root, which
// is the per-host → cluster merge path.
func (r *Registry) Namespace(name string) *Registry {
	if name == "" || strings.Contains(name, "/") {
		panic(fmt.Sprintf("metrics: invalid namespace %q", name))
	}
	return &Registry{prefix: r.prefix + name + "/", core: r.core}
}

// qualify returns the full name for a registration through this view.
func (r *Registry) qualify(name string) string { return r.prefix + name }

// register stores v under the qualified name, rejecting duplicates.
func (r *Registry) register(name string, v any) error {
	if name == "" {
		return fmt.Errorf("metrics: empty instrument name")
	}
	full := r.qualify(name)
	if _, dup := r.core.entries[full]; dup {
		return fmt.Errorf("metrics: duplicate registration of %q", full)
	}
	r.core.entries[full] = v
	r.core.order = append(r.core.order, full)
	return nil
}

// Counter registers and returns a new counter under the view's namespace.
func (r *Registry) Counter(name string) (*Counter, error) {
	c := &Counter{Name: r.qualify(name)}
	if err := r.register(name, c); err != nil {
		return nil, err
	}
	return c, nil
}

// MustCounter is Counter, panicking on collision (assembly-time bug).
func (r *Registry) MustCounter(name string) *Counter {
	c, err := r.Counter(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Series registers and returns a new series under the view's namespace.
func (r *Registry) Series(name string) (*Series, error) {
	s := &Series{Name: r.qualify(name)}
	if err := r.register(name, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Histogram registers and returns a new histogram under the view's
// namespace, with the given bucket resolution.
func (r *Registry) Histogram(name string, resolution float64) (*Histogram, error) {
	h := NewHistogram(resolution)
	if err := r.register(name, h); err != nil {
		return nil, err
	}
	return h, nil
}

// Lookup returns the instrument registered under the (namespace-qualified)
// name, and whether it exists.
func (r *Registry) Lookup(name string) (any, bool) {
	v, ok := r.core.entries[r.qualify(name)]
	return v, ok
}

// Names returns every fully-qualified instrument name, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.core.order))
	for _, n := range r.core.order {
		if strings.HasPrefix(n, r.prefix) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Merge copies every instrument from src into r's namespace.
//
// Merge is idempotent: a name that already maps to the *same* instrument
// (same pointer) is skipped, so merging one source registry repeatedly —
// a retried reporting pass, a reconnecting shard re-announcing its hosts —
// neither errors nor double-counts. A name already bound to a *different*
// instrument is a genuine collision and aborts the merge with an error
// before anything is copied; callers that own overlapping hosts must
// namespace them apart first.
func (r *Registry) Merge(src *Registry) error {
	names := src.Names()
	for _, n := range names {
		if have, dup := r.core.entries[r.qualify(n)]; dup && have != src.core.entries[n] {
			return fmt.Errorf("metrics: merge collision on %q", r.qualify(n))
		}
	}
	for _, n := range names {
		if _, dup := r.core.entries[r.qualify(n)]; dup {
			continue // same instrument, already merged
		}
		r.core.entries[r.qualify(n)] = src.core.entries[n]
		r.core.order = append(r.core.order, r.qualify(n))
	}
	return nil
}

// SumCounters sums every counter whose fully-qualified name ends in
// "/"+suffix (or equals it), the aggregation path for per-host counters:
// SumCounters("delivered_bytes") over a cluster registry returns cluster
// aggregate goodput bytes regardless of host count.
func (r *Registry) SumCounters(suffix string) float64 {
	total := 0.0
	for _, n := range r.Names() {
		if n != suffix && !strings.HasSuffix(n, "/"+suffix) {
			continue
		}
		if c, ok := r.core.entries[n].(*Counter); ok {
			total += c.v
		}
	}
	return total
}
