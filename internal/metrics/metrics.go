// Package metrics provides time-series sampling and table formatting for
// the benchmark harness: throughput-over-time curves (Figures 9, 11), CPU
// breakdown tables (Figures 4, 8, 10, 12, 14) and paper-style row output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"e2edt/internal/sim"
)

// Series is a named sequence of (time, value) samples.
type Series struct {
	Name   string
	Times  []float64
	Values []float64
}

// Add appends a sample.
func (s *Series) Add(t, v float64) {
	s.Times = append(s.Times, t)
	s.Values = append(s.Values, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// Mean returns the average value, 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Min returns the smallest value, 0 for an empty series (matching
// Histogram.Min, and keeping ±Inf out of formatted report tables).
func (s *Series) Min() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, v := range s.Values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest value, 0 for an empty series (matching
// Histogram.Max).
func (s *Series) Max() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	max := math.Inf(-1)
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	return max
}

// Stddev returns the population standard deviation.
func (s *Series) Stddev() float64 {
	n := len(s.Values)
	if n == 0 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, v := range s.Values {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// TailMean returns the mean of the last fraction of samples (e.g. 0.8 skips
// the first 20% as warm-up).
func (s *Series) TailMean(fraction float64) float64 {
	if fraction <= 0 || fraction > 1 || len(s.Values) == 0 {
		return s.Mean()
	}
	start := int(float64(len(s.Values)) * (1 - fraction))
	tail := Series{Values: s.Values[start:]}
	return tail.Mean()
}

// Sampler periodically samples a cumulative counter and records its rate of
// change (units/second).
type Sampler struct {
	Series   Series
	eng      *sim.Engine
	counter  func() float64
	last     float64
	lastTick sim.Time
	interval sim.Duration
	ticker   *sim.Ticker
	stopped  bool
}

// NewSampler starts sampling counter every interval on eng. The counter
// must be cumulative (e.g. total bytes transferred); the recorded value is
// the per-interval rate.
func NewSampler(eng *sim.Engine, name string, interval sim.Duration, counter func() float64) *Sampler {
	s := &Sampler{
		Series:   Series{Name: name},
		eng:      eng,
		counter:  counter,
		interval: interval,
	}
	s.last = counter()
	s.lastTick = eng.Now()
	s.ticker = eng.NewTicker(interval, func(now sim.Time) {
		cur := s.counter()
		s.Series.Add(float64(now), (cur-s.last)/float64(interval))
		s.last = cur
		s.lastTick = now
	})
	return s
}

// Stop halts sampling. A run that ends between ticks still owns the units
// moved since the last tick: Stop flushes them as a final partial-interval
// sample whose rate is scaled by the actually elapsed fraction, so tail
// throughput is not dropped from the recorded curve.
func (s *Sampler) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	s.ticker.Stop()
	elapsed := float64(s.eng.Now() - s.lastTick)
	if elapsed <= 0 {
		return
	}
	cur := s.counter()
	s.Series.Add(float64(s.eng.Now()), (cur-s.last)/elapsed)
	s.last = cur
	s.lastTick = s.eng.Now()
}

// Table renders paper-style aligned rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, padding or truncating to the header width.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + c + " |")
		}
		b.WriteString("\n")
	}
	row(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	row(sep)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order, for deterministic output.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
