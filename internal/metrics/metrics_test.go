package metrics

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"e2edt/internal/sim"
)

func TestSeriesStats(t *testing.T) {
	var s Series
	for i, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(float64(i), v)
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Stddev(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	if s.Min() != 0 || s.Max() != 0 {
		// Matching Histogram.Min/Max: 0, never ±Inf, so report tables
		// built from empty series stay printable.
		t.Fatalf("empty min/max = %v/%v, want 0/0", s.Min(), s.Max())
	}
	if s.Stddev() != 0 {
		t.Fatal("empty stddev should be 0")
	}
	if s.TailMean(0.5) != 0 {
		t.Fatal("empty tail mean should be 0")
	}
}

// TestEmptySeriesTableHasNoInf: an empty series summarized into a report
// table (the experiments Series index format) must not leak Inf cells.
func TestEmptySeriesTableHasNoInf(t *testing.T) {
	s := Series{Name: "tput"}
	tb := Table{Headers: []string{"series", "n", "mean", "min", "max"}}
	tb.AddRow(s.Name, fmt.Sprintf("%d", s.Len()),
		fmt.Sprintf("%.3f", s.Mean()), fmt.Sprintf("%.3f", s.Min()),
		fmt.Sprintf("%.3f", s.Max()))
	for _, out := range []string{tb.String(), tb.Markdown()} {
		if strings.Contains(out, "Inf") || strings.Contains(out, "inf") {
			t.Fatalf("Inf leaked into formatted table:\n%s", out)
		}
	}
}

func TestTailMean(t *testing.T) {
	var s Series
	// Warm-up of zeros then steady 10s.
	for i := 0; i < 5; i++ {
		s.Add(float64(i), 0)
	}
	for i := 5; i < 10; i++ {
		s.Add(float64(i), 10)
	}
	if got := s.TailMean(0.5); got != 10 {
		t.Fatalf("TailMean(0.5) = %v, want 10", got)
	}
	if got := s.TailMean(1); got != 5 {
		t.Fatalf("TailMean(1) = %v, want 5", got)
	}
	if got := s.TailMean(0); got != s.Mean() {
		t.Fatal("invalid fraction should fall back to Mean")
	}
}

func TestSamplerRates(t *testing.T) {
	eng := sim.NewEngine()
	bytes := 0.0
	// Simulated producer: 100 units/s in steps.
	eng.NewTicker(0.1, func(sim.Time) { bytes += 10 })
	s := NewSampler(eng, "tput", 1, func() float64 { return bytes })
	eng.RunUntil(10)
	s.Stop()
	if s.Series.Len() != 10 {
		t.Fatalf("samples = %d, want 10", s.Series.Len())
	}
	// Producer ticks can land exactly on sample boundaries, so individual
	// samples may be off by one 10-unit step; the aggregate must balance.
	sum := 0.0
	for i, v := range s.Series.Values {
		if math.Abs(v-100) > 10+1e-9 {
			t.Fatalf("sample %d = %v, want 100±10", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1000) > 10+1e-9 {
		t.Fatalf("integrated volume = %v, want ≈1000", sum)
	}
}

// TestSamplerFlushesFinalPartialInterval: a run ending between ticker
// fires used to drop every byte moved after the last fire, under-reporting
// tail throughput. Stop now records the partial interval with the rate
// scaled by the actually elapsed fraction.
func TestSamplerFlushesFinalPartialInterval(t *testing.T) {
	eng := sim.NewEngine()
	bytes := 0.0
	eng.NewTicker(0.1, func(sim.Time) { bytes += 10 }) // 100 units/s
	s := NewSampler(eng, "tput", 1, func() float64 { return bytes })
	// Stop mid-interval: 3 full intervals plus 0.5s of tail.
	eng.RunUntil(3.5)
	s.Stop()
	if got := s.Series.Len(); got != 4 {
		t.Fatalf("samples = %d, want 3 full + 1 partial", got)
	}
	lastT := s.Series.Times[3]
	lastV := s.Series.Values[3]
	if lastT != 3.5 {
		t.Fatalf("final sample at t=%v, want 3.5", lastT)
	}
	// 50 units moved over the final 0.5s → still 100 units/s, not the 50
	// units/s that interval-scaled accounting would report.
	if math.Abs(lastV-100) > 10+1e-9 {
		t.Fatalf("final partial-interval rate = %v, want ≈100", lastV)
	}
	// Integrated volume must cover every byte moved, including the tail.
	sum := 0.0
	for i, v := range s.Series.Values {
		dt := 1.0
		if i == 3 {
			dt = 0.5
		}
		sum += v * dt
	}
	if math.Abs(sum-bytes) > 10+1e-9 {
		t.Fatalf("integrated volume = %v, want %v (no tail drop)", sum, bytes)
	}
	// Stop is idempotent: no double flush.
	s.Stop()
	if s.Series.Len() != 4 {
		t.Fatal("second Stop added a sample")
	}
}

// TestSamplerStopOnTickBoundaryAddsNothing: stopping exactly on a tick
// leaves no partial interval to flush.
func TestSamplerStopOnTickBoundaryAddsNothing(t *testing.T) {
	eng := sim.NewEngine()
	v := 0.0
	eng.NewTicker(0.25, func(sim.Time) { v += 1 })
	s := NewSampler(eng, "x", 1, func() float64 { return v })
	eng.RunUntil(3)
	s.Stop()
	if s.Series.Len() != 3 {
		t.Fatalf("samples = %d, want 3 (no zero-length flush)", s.Series.Len())
	}
}

func TestSamplerStops(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(eng, "x", 1, func() float64 { return 0 })
	eng.RunUntil(3)
	s.Stop()
	n := s.Series.Len()
	eng.RunUntil(10)
	if s.Series.Len() != n {
		t.Fatal("sampler kept sampling after Stop")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Figure X", Headers: []string{"block", "Gbps"}}
	tb.AddRow("4MB", "39.1")
	tb.AddRow("64KB", "12.0")
	out := tb.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "block") || !strings.Contains(out, "Gbps") {
		t.Fatal("missing headers")
	}
	if !strings.Contains(out, "4MB") || !strings.Contains(out, "12.0") {
		t.Fatal("missing cells")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := Table{Headers: []string{"a", "b", "c"}}
	tb.AddRow("only")
	if len(tb.Rows[0]) != 3 {
		t.Fatal("row not padded to header width")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]float64{"z": 1, "a": 2, "m": 3}
	keys := SortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "m" || keys[2] != "z" {
		t.Fatalf("keys = %v", keys)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	out := tb.Markdown()
	if !strings.Contains(out, "**T**") {
		t.Fatal("missing bold title")
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("markdown header wrong:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 2 |") {
		t.Fatalf("markdown row wrong:\n%s", out)
	}
}
