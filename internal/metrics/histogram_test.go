package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1e-6)
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if h.Summary(1, "s") != "no samples" {
		t.Fatal("empty summary wrong")
	}
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(1e-6)
	rng := rand.New(rand.NewSource(7))
	var values []float64
	for i := 0; i < 20000; i++ {
		v := rng.ExpFloat64() * 0.01 // exponential latencies ~10ms
		values = append(values, v)
		h.Observe(v)
	}
	// Compare against exact quantiles within the 5% bucket growth plus
	// sampling slack.
	exact := func(q float64) float64 {
		cp := append([]float64(nil), values...)
		for i := range cp {
			for j := i + 1; j < len(cp); j++ {
				if cp[j] < cp[i] {
					cp[i], cp[j] = cp[j], cp[i]
				}
			}
			if float64(i) >= q*float64(len(cp)) {
				return cp[i]
			}
		}
		return cp[len(cp)-1]
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, want := h.Quantile(q), exact(q)
		if math.Abs(got-want)/want > 0.10 {
			t.Fatalf("q%v: got %v, want ≈%v", q, got, want)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	check := func(seed int64) bool {
		h := NewHistogram(1e-6)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			h.Observe(rng.Float64())
		}
		prev := 0.0
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Quantile(0) == h.Min() && h.Quantile(1) == h.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample not clamped: %v", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(1e-3), NewHistogram(1e-3)
	for i := 1; i <= 10; i++ {
		a.Observe(float64(i))
	}
	for i := 11; i <= 20; i++ {
		b.Observe(float64(i))
	}
	a.Merge(b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 20 || a.Min() != 1 {
		t.Fatal("merged extremes wrong")
	}
	if med := a.Quantile(0.5); med < 9 || med > 12 {
		t.Fatalf("merged median = %v", med)
	}
	a.Merge(nil) // no-op
	a.Merge(NewHistogram(1e-3))
}

func TestHistogramMergeIncompatiblePanics(t *testing.T) {
	a, b := NewHistogram(1e-3), NewHistogram(1e-6)
	b.Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestHistogramInvalidResolutionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(0)
}

func TestHistogramSummaryAndBuckets(t *testing.T) {
	h := NewHistogram(1e-3)
	h.Observe(0.05)
	h.Observe(0.10)
	if s := h.Summary(1e3, "ms"); s == "" || s == "no samples" {
		t.Fatalf("summary = %q", s)
	}
	if h.Buckets() == "" {
		t.Fatal("buckets empty")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(1e-3)
	h.Observe(0.042)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Every quantile of a one-sample distribution is that sample: the
	// bucket edge answer must be clamped to the observed extremes.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0.042 {
			t.Fatalf("Quantile(%v) = %v, want the single sample 0.042", q, got)
		}
	}
	if h.Mean() != 0.042 || h.Min() != 0.042 || h.Max() != 0.042 {
		t.Fatalf("mean/min/max = %v/%v/%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramQuantileExtremes(t *testing.T) {
	h := NewHistogram(1e-3)
	for _, v := range []float64{0.010, 0.020, 0.500, 3.000} {
		h.Observe(v)
	}
	// q=0 is the minimum, q=1 the maximum, exactly (not a bucket edge).
	if got := h.Quantile(0); got != 0.010 {
		t.Fatalf("Quantile(0) = %v, want min 0.010", got)
	}
	if got := h.Quantile(1); got != 3.000 {
		t.Fatalf("Quantile(1) = %v, want max 3.000", got)
	}
	// Out-of-range q clamps rather than panics or extrapolates.
	if got := h.Quantile(-0.5); got != 0.010 {
		t.Fatalf("Quantile(-0.5) = %v, want min", got)
	}
	if got := h.Quantile(1.5); got != 3.000 {
		t.Fatalf("Quantile(1.5) = %v, want max", got)
	}
}

func TestHistogramSubResolutionSamples(t *testing.T) {
	// Samples at or below the resolution all collapse into bucket 0; the
	// min/max clamp must still give exact answers.
	h := NewHistogram(1e-3)
	h.Observe(1e-5)
	h.Observe(2e-5)
	h.Observe(1e-3)
	if got := h.Quantile(0.5); got < 1e-5 || got > 1e-3 {
		t.Fatalf("Quantile(0.5) = %v outside observed range", got)
	}
	if h.Min() != 1e-5 || h.Max() != 1e-3 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramZeroSample(t *testing.T) {
	h := NewHistogram(1e-3)
	h.Observe(0)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("zero sample mishandled")
	}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("Quantile(0.99) = %v, want 0", got)
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	a, b := NewHistogram(1e-3), NewHistogram(1e-3)
	a.Observe(1)
	a.Merge(b)   // empty other: no-op
	a.Merge(nil) // nil other: no-op
	if a.Count() != 1 || a.Min() != 1 || a.Max() != 1 {
		t.Fatal("merging empty changed the histogram")
	}
	b.Merge(a)
	if b.Count() != 1 || b.Quantile(0.5) != 1 {
		t.Fatal("merging into empty lost the sample")
	}
}

// TestHistogramQuantileBoundaryCumulative pins the cumulative-walk rounding
// at exact rank boundaries: with an even split across two well-separated
// buckets, the median rank ⌈q·n⌉ falls in the LOWER bucket — an off-by-one
// in the target (floor instead of ceil, or a strict > comparison) would
// report the upper bucket. Verified correct; this keeps it that way.
func TestHistogramQuantileBoundaryCumulative(t *testing.T) {
	h := NewHistogram(1e-3)
	h.Observe(0.010)
	h.Observe(3.000)
	if got := h.Quantile(0.5); got >= 1.0 || got < 0.010 {
		t.Fatalf("two-sample median = %v, want the lower sample's bucket", got)
	}
	h2 := NewHistogram(1e-3)
	for _, v := range []float64{0.010, 0.010, 3.000, 3.000} {
		h2.Observe(v)
	}
	if got := h2.Quantile(0.5); got >= 1.0 {
		t.Fatalf("even-split median = %v, want the lower bucket", got)
	}
	if got := h2.Quantile(0.75); got < 1.0 {
		t.Fatalf("even-split p75 = %v, want the upper bucket", got)
	}
	if got := h2.Quantile(0.5); got < h2.Min() || got > h2.Max() {
		t.Fatalf("median %v escaped the observed range", got)
	}
}
