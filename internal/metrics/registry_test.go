package metrics

import (
	"strings"
	"testing"
)

// Two hosts registering the same instrument name in one shared registry is
// the single-endpoint assumption the cluster fabric breaks; the registry
// must reject it rather than silently sharing one counter between hosts.
func TestRegistryCollisionDetected(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("delivered_bytes"); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if _, err := r.Counter("delivered_bytes"); err == nil {
		t.Fatal("duplicate registration must error")
	} else if !strings.Contains(err.Error(), "delivered_bytes") {
		t.Fatalf("error should name the colliding instrument, got %v", err)
	}
}

func TestRegistryNamespacePreventsCollision(t *testing.T) {
	r := NewRegistry()
	a := r.Namespace("host0000").MustCounter("delivered_bytes")
	b := r.Namespace("host0001").MustCounter("delivered_bytes")
	if a == b {
		t.Fatal("namespaced counters must be distinct instruments")
	}
	a.Add(10)
	b.Add(32)
	if got := r.SumCounters("delivered_bytes"); got != 42 {
		t.Fatalf("SumCounters = %v, want 42", got)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "host0000/delivered_bytes" || names[1] != "host0001/delivered_bytes" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryMerge(t *testing.T) {
	root := NewRegistry()
	h0 := NewRegistry()
	h0.MustCounter("delivered_bytes").Add(7)
	h1 := NewRegistry()
	h1.MustCounter("delivered_bytes").Add(5)

	if err := root.Namespace("host0000").Merge(h0); err != nil {
		t.Fatalf("merge h0: %v", err)
	}
	if err := root.Namespace("host0001").Merge(h1); err != nil {
		t.Fatalf("merge h1: %v", err)
	}
	if got := root.SumCounters("delivered_bytes"); got != 12 {
		t.Fatalf("SumCounters = %v, want 12", got)
	}

	// Merging a second registry into an already-used namespace collides and
	// must leave the target untouched.
	h2 := NewRegistry()
	h2.MustCounter("delivered_bytes").Add(99)
	if err := root.Namespace("host0001").Merge(h2); err == nil {
		t.Fatal("colliding merge must error")
	}
	if got := root.SumCounters("delivered_bytes"); got != 12 {
		t.Fatalf("failed merge must not alter registry: sum = %v, want 12", got)
	}
}

// Re-merging the same source registry must be a no-op, not an error and
// not a double-count: reporting paths that retry (or shards that
// re-announce their hosts after a reconnect) call Merge with a registry
// the target has already absorbed. Regression test for the old behavior,
// which rejected every repeat merge as a collision.
func TestRegistryMergeIdempotent(t *testing.T) {
	root := NewRegistry()
	h0 := NewRegistry()
	c := h0.MustCounter("delivered_bytes")
	c.Add(7)
	h0.MustCounter("src_jobs").Add(2)

	ns := root.Namespace("host0000")
	for i := 0; i < 3; i++ {
		if err := ns.Merge(h0); err != nil {
			t.Fatalf("merge %d of same source: %v", i+1, err)
		}
	}
	if got := root.SumCounters("delivered_bytes"); got != 7 {
		t.Fatalf("repeated merge double-counted: sum = %v, want 7", got)
	}
	if got := len(root.Names()); got != 2 {
		t.Fatalf("repeated merge duplicated entries: %d names, want 2", got)
	}
	// The merged instrument is shared, not copied: post-merge increments are
	// visible through the target, and another re-merge still no-ops.
	c.Add(3)
	if err := ns.Merge(h0); err != nil {
		t.Fatalf("re-merge after increment: %v", err)
	}
	if got := root.SumCounters("delivered_bytes"); got != 10 {
		t.Fatalf("sum = %v, want 10", got)
	}

	// A different instrument under an already-bound name is still a genuine
	// collision — idempotence must not open the door to silent replacement.
	h2 := NewRegistry()
	h2.MustCounter("delivered_bytes").Add(99)
	h2.MustCounter("dst_jobs").Add(1)
	if err := ns.Merge(h2); err == nil {
		t.Fatal("merging a different instrument under a bound name must error")
	}
	if got := root.SumCounters("delivered_bytes"); got != 10 {
		t.Fatalf("failed merge altered registry: sum = %v, want 10", got)
	}
	if _, ok := ns.Lookup("dst_jobs"); ok {
		t.Fatal("aborted merge must copy nothing, even non-colliding names")
	}
}

func TestRegistryMixedInstruments(t *testing.T) {
	r := NewRegistry()
	ns := r.Namespace("shard0")
	s, err := ns.Series("goodput")
	if err != nil {
		t.Fatal(err)
	}
	s.Add(0, 1)
	h, err := ns.Histogram("decision_us", 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(3)
	if _, ok := ns.Lookup("goodput"); !ok {
		t.Fatal("Lookup through namespace failed")
	}
	if _, ok := r.Lookup("shard0/decision_us"); !ok {
		t.Fatal("Lookup through root failed")
	}
	// A series name does not collide with a counter of a different name,
	// but does collide with any instrument of the same name.
	if _, err := ns.Counter("goodput"); err == nil {
		t.Fatal("cross-kind duplicate must error")
	}
}
