// Windowed and decayed estimators for gray-failure detection. The
// all-time Histogram in this package is the wrong tool for a detector: a
// rail that ran healthy for an hour and sagged a minute ago still shows a
// healthy all-time p99 — the recent sag is masked by the mass of old
// samples. Detectors need estimators that forget.
package metrics

import (
	"math"
	"sort"
)

// WindowedQuantile keeps the most recent window samples in a ring buffer
// and answers quantile queries over exactly that window. Old samples are
// evicted by arrival order, so the estimate tracks the current regime
// with a lag of at most one window. Deterministic: no sampling, no
// randomization — the same observation sequence yields the same answers.
type WindowedQuantile struct {
	buf     []float64
	next    int
	n       int
	scratch []float64
}

// NewWindowedQuantile returns an estimator over the last window samples.
func NewWindowedQuantile(window int) *WindowedQuantile {
	if window <= 0 {
		panic("metrics: WindowedQuantile window must be positive")
	}
	return &WindowedQuantile{buf: make([]float64, window)}
}

// Observe records one sample, evicting the oldest when the window is full.
func (w *WindowedQuantile) Observe(v float64) {
	w.buf[w.next] = v
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of samples currently in the window.
func (w *WindowedQuantile) Len() int { return w.n }

// Window returns the ring capacity.
func (w *WindowedQuantile) Window() int { return len(w.buf) }

// Quantile returns the q-quantile (q in [0, 1], clamped) of the samples
// in the window: q=0 is the minimum, q=1 the maximum. An empty window
// returns 0 — callers gate on Len() before trusting the estimate.
func (w *WindowedQuantile) Quantile(q float64) float64 {
	if w.n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// buf[:n] holds exactly the live samples whether or not the ring has
	// wrapped; sorting discards arrival order anyway.
	w.scratch = append(w.scratch[:0], w.buf[:w.n]...)
	sort.Float64s(w.scratch)
	idx := int(math.Ceil(q*float64(w.n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= w.n {
		idx = w.n - 1
	}
	return w.scratch[idx]
}

// Reset empties the window.
func (w *WindowedQuantile) Reset() {
	w.next, w.n = 0, 0
}

// EWMA is an exponentially-decayed mean: each observation contributes
// alpha, the standing estimate (1-alpha). The first observation seeds the
// estimate directly so a detector does not spend its early life averaging
// against zero.
type EWMA struct {
	alpha float64
	v     float64
	n     int
}

// NewEWMA returns a decayed mean with the given per-observation weight
// (0 < alpha <= 1; alpha=1 tracks the latest sample exactly).
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("metrics: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the estimate.
func (e *EWMA) Observe(v float64) {
	if e.n == 0 {
		e.v = v
	} else {
		e.v = e.alpha*v + (1-e.alpha)*e.v
	}
	e.n++
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Samples returns how many observations have been folded in.
func (e *EWMA) Samples() int { return e.n }

// Reset forgets everything.
func (e *EWMA) Reset() { e.v, e.n = 0, 0 }
