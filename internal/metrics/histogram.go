package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram collects samples into logarithmic buckets for quantile
// estimation — used for per-command latency distributions in the fio
// harness. Buckets grow by a fixed ratio from a minimum resolution, so
// memory stays constant regardless of sample count while relative error
// stays bounded by the growth ratio.
type Histogram struct {
	// unit is the smallest distinguishable value (bucket 0's upper edge).
	unit float64
	// growth is the bucket edge ratio (> 1).
	growth float64
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given resolution (smallest
// meaningful value) and 5% default bucket growth.
func NewHistogram(resolution float64) *Histogram {
	if resolution <= 0 {
		panic("metrics: histogram resolution must be positive")
	}
	return &Histogram{
		unit:   resolution,
		growth: 1.05,
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// bucketFor maps a value to its bucket index.
func (h *Histogram) bucketFor(v float64) int {
	if v <= h.unit {
		return 0
	}
	return 1 + int(math.Log(v/h.unit)/math.Log(h.growth))
}

// edge returns the upper edge of bucket i.
func (h *Histogram) edge(i int) float64 {
	if i == 0 {
		return h.unit
	}
	return h.unit * math.Pow(h.growth, float64(i))
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := h.bucketFor(v)
	for len(h.counts) <= i {
		h.counts = append(h.counts, 0)
	}
	h.counts[i]++
	h.total++
	h.sum += v
	h.min = math.Min(h.min, v)
	h.max = math.Max(h.max, v)
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min and Max return the extreme samples (0 when empty).
func (h *Histogram) Min() float64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q ∈ [0,1], with bucket-resolution
// accuracy. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		if acc >= target {
			e := h.edge(i)
			// Clamp to observed extremes for tighter small-sample answers.
			return math.Min(math.Max(e, h.min), h.max)
		}
	}
	return h.Max()
}

// Summary renders "p50/p95/p99 min/mean/max" in the given unit scale.
func (h *Histogram) Summary(scale float64, unit string) string {
	if h.total == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50=%.3g%s p95=%.3g%s p99=%.3g%s min=%.3g%s mean=%.3g%s max=%.3g%s n=%d",
		h.Quantile(0.50)*scale, unit,
		h.Quantile(0.95)*scale, unit,
		h.Quantile(0.99)*scale, unit,
		h.Min()*scale, unit, h.Mean()*scale, unit, h.Max()*scale, unit, h.total)
}

// Merge adds other's samples into h. Both histograms must share the same
// resolution and growth (they do when created by NewHistogram with the
// same resolution).
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if other.unit != h.unit || other.growth != h.growth {
		panic("metrics: merging incompatible histograms")
	}
	for len(h.counts) < len(other.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	h.min = math.Min(h.min, other.min)
	h.max = math.Max(h.max, other.max)
}

// Buckets renders a compact text distribution (for debugging), listing
// non-empty buckets sorted by edge.
func (h *Histogram) Buckets() string {
	var parts []string
	for i, c := range h.counts {
		if c > 0 {
			parts = append(parts, fmt.Sprintf("≤%.3g:%d", h.edge(i), c))
		}
	}
	return strings.Join(parts, " ")
}
