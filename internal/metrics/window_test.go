package metrics

import (
	"math"
	"testing"
)

func TestWindowedQuantileEmpty(t *testing.T) {
	w := NewWindowedQuantile(8)
	if w.Len() != 0 {
		t.Fatalf("empty window Len = %d", w.Len())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := w.Quantile(q); v != 0 {
			t.Fatalf("empty window Quantile(%g) = %g, want 0", q, v)
		}
	}
}

func TestWindowedQuantileBasics(t *testing.T) {
	w := NewWindowedQuantile(16)
	for i := 1; i <= 10; i++ {
		w.Observe(float64(i))
	}
	if w.Len() != 10 {
		t.Fatalf("Len = %d, want 10", w.Len())
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if v := w.Quantile(c.q); v != c.want {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, v, c.want)
		}
	}
	// Out-of-range q clamps instead of panicking.
	if v := w.Quantile(-3); v != 1 {
		t.Fatalf("Quantile(-3) = %g, want min 1", v)
	}
	if v := w.Quantile(7); v != 10 {
		t.Fatalf("Quantile(7) = %g, want max 10", v)
	}
	if v := w.Quantile(math.NaN()); v != 1 {
		t.Fatalf("Quantile(NaN) = %g, want min 1", v)
	}
}

// TestWindowedQuantileDecay is the reason this type exists: once the sag
// regime has filled the window, the healthy history is fully forgotten —
// unlike the all-time Histogram, whose old mass would mask it.
func TestWindowedQuantileDecay(t *testing.T) {
	w := NewWindowedQuantile(4)
	for i := 0; i < 100; i++ {
		w.Observe(1) // a long healthy history
	}
	if v := w.Quantile(0.99); v != 1 {
		t.Fatalf("healthy p99 = %g, want 1", v)
	}
	// Regime change: latencies jump 10×.
	for i := 0; i < 4; i++ {
		w.Observe(10)
	}
	if v := w.Quantile(0.5); v != 10 {
		t.Fatalf("post-sag p50 = %g, want 10 (healthy history must be evicted)", v)
	}
	if v := w.Quantile(0); v != 10 {
		t.Fatalf("post-sag min = %g, want 10", v)
	}
	// Recovery decays the same way.
	for i := 0; i < 4; i++ {
		w.Observe(2)
	}
	if v := w.Quantile(1); v != 2 {
		t.Fatalf("post-recovery max = %g, want 2", v)
	}
}

func TestWindowedQuantilePartialWrap(t *testing.T) {
	w := NewWindowedQuantile(3)
	w.Observe(5)
	if v := w.Quantile(0.5); v != 5 {
		t.Fatalf("single sample p50 = %g, want 5", v)
	}
	w.Observe(1)
	w.Observe(9)
	w.Observe(7) // evicts the 5
	if v := w.Quantile(0); v != 1 {
		t.Fatalf("min = %g, want 1", v)
	}
	if v := w.Quantile(1); v != 9 {
		t.Fatalf("max = %g, want 9", v)
	}
	w.Reset()
	if w.Len() != 0 || w.Quantile(0.5) != 0 {
		t.Fatalf("Reset did not empty the window")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Samples() != 0 {
		t.Fatalf("fresh EWMA not zero")
	}
	e.Observe(8)
	if e.Value() != 8 {
		t.Fatalf("first observation must seed directly, got %g", e.Value())
	}
	e.Observe(0)
	if e.Value() != 4 {
		t.Fatalf("after 8,0 with alpha 0.5: %g, want 4", e.Value())
	}
	// Converges toward a new regime geometrically.
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	if math.Abs(e.Value()-10) > 1e-9 {
		t.Fatalf("EWMA did not converge: %g", e.Value())
	}
	e.Reset()
	if e.Value() != 0 || e.Samples() != 0 {
		t.Fatalf("Reset did not clear")
	}
	e.Observe(3)
	if e.Value() != 3 {
		t.Fatalf("post-Reset first observation must seed, got %g", e.Value())
	}
}
