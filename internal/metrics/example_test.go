package metrics_test

import (
	"fmt"

	"e2edt/internal/metrics"
)

// ExampleHistogram shows latency quantile tracking with logarithmic
// buckets, as used for per-command latency in the fio harness.
func ExampleHistogram() {
	h := metrics.NewHistogram(1e-6)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 1e-3) // 1ms … 100ms
	}
	fmt.Printf("n=%d mean=%.1fms p99≈%.0fms max=%.0fms\n",
		h.Count(), h.Mean()*1e3, h.Quantile(0.99)*1e3, h.Max()*1e3)
	// Output:
	// n=100 mean=50.5ms p99≈100ms max=100ms
}
