// Package iser implements the iSCSI Extensions for RDMA datamover
// (RFC 5046) over the simulated verbs layer: the target answers SCSI READ
// commands with RDMA WRITE and SCSI WRITE commands with RDMA READ, exactly
// the direction mapping the paper describes in §3.1.
//
// Each data movement is one fluid flow combining, on the target side, the
// worker thread's copy between the LUN's backing store and its
// RDMA-registered bounce buffer (where NUMA placement and cache coherency
// bite) with, on the wire, NIC DMA at both ends. A multi-portal mover load
// balances commands across several links and — under NUMA-aware tuning —
// routes each command through the NIC local to the serving worker's node.
package iser

import (
	"fmt"
	"math"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
	"e2edt/internal/placer"
	"e2edt/internal/rdma"
	"e2edt/internal/sim"
)

// Params calibrates datamover costs.
type Params struct {
	// CopyCyclesPerByte is the target worker's memcpy cost between the
	// backing store and the bounce buffer.
	CopyCyclesPerByte float64
	// MediaCyclesPerByte is the worker's cost to drive a media (non-RAM)
	// device via its driver.
	MediaCyclesPerByte float64
	// InitCyclesPerByte is the initiator's kernel handling cost.
	InitCyclesPerByte float64
	// BounceCacheFactor discounts DRAM traffic for the small, hot bounce
	// buffers (served from the last-level cache via DDIO); 1 disables the
	// discount.
	BounceCacheFactor float64
	// RDMA parameterizes the verbs layer (read penalty, op latency).
	RDMA rdma.Params
}

// DefaultParams returns costs consistent with the paper's target-dominated
// iSER profile.
func DefaultParams() Params {
	return Params{
		CopyCyclesPerByte:  0.45,
		MediaCyclesPerByte: 0.08,
		InitCyclesPerByte:  0.06,
		BounceCacheFactor:  0.25,
		RDMA:               rdma.DefaultParams(),
	}
}

// Portal is one RDMA-capable path between initiator and target.
type Portal struct {
	Link    *fabric.Link
	InitNIC *host.Device
	TgtNIC  *host.Device
}

// PortalFor orients a link's endpoints given the target host.
func PortalFor(l *fabric.Link, targetHost *host.Host) Portal {
	switch targetHost {
	case l.B.Host:
		return Portal{Link: l, InitNIC: l.A, TgtNIC: l.B}
	case l.A.Host:
		return Portal{Link: l, InitNIC: l.B, TgtNIC: l.A}
	default:
		panic(fmt.Sprintf("iser: target host %s not on link %s", targetHost.Name, l.Cfg.Name))
	}
}

// Mover is the RDMA datamover for one initiator-target session.
type Mover struct {
	Portals []Portal
	// InitThread handles initiator-side completions.
	InitThread *host.Thread
	// Target supplies the contention model for worker copies.
	Target *iscsi.Target
	P      Params

	// Placer, when non-nil, is the adaptive placement engine: every Move
	// flow is tracked so the engine can rebuild its cost coefficients as
	// workers are pinned and buffers re-homed.
	Placer *placer.Engine

	sim  *fluid.Sim
	eng  *sim.Engine
	next int
	// Moved counts payload bytes transferred (both directions).
	Moved float64
}

// NewMover builds a datamover over the given portals.
func NewMover(portals []Portal, initThread *host.Thread, target *iscsi.Target, p Params) *Mover {
	if len(portals) == 0 {
		panic("iser: mover needs at least one portal")
	}
	if initThread == nil || target == nil {
		panic("iser: mover needs an initiator thread and a target")
	}
	if p.RDMA.ReadPenalty < 1 {
		panic("iser: RDMA ReadPenalty must be ≥ 1")
	}
	return &Mover{
		Portals:    portals,
		InitThread: initThread,
		Target:     target,
		P:          p,
		sim:        portals[0].Link.Sim(),
		eng:        portals[0].Link.Engine(),
	}
}

var (
	_ iscsi.Mover       = (*Mover)(nil)
	_ iscsi.StreamMover = (*Mover)(nil)
)

// bounceScale returns the effective DRAM factor for bounce buffers.
func (m *Mover) bounceScale() float64 {
	if m.P.BounceCacheFactor <= 0 {
		return 1
	}
	return m.P.BounceCacheFactor
}

// workerCopy charges the worker thread's memcpy between the backing store
// and the bounce buffer: the store side pays full DRAM traffic, the bounce
// side is cache-discounted, and the CPU cost carries the NUMA penalties of
// both operands.
//
// Coherency-storm penalties apply only to the store side: tmpfs pages are
// shared across target processes, so a remote store write invalidates
// cache lines machine-wide (the paper's 3x write-CPU observation), whereas
// the bounce buffer is thread-private — remote placement costs latency
// (read-class penalty) but not invalidation storms.
func (m *Mover) workerCopy(f *fluid.Flow, w *iscsi.Worker, store *numa.Buffer, toBounce bool, share, cycles float64) {
	bouncePen := w.Thread.MemoryPenalty(w.Bounce, false)
	if toBounce {
		w.Thread.ChargeMemory(f, store, share, false, host.CatIO)
		w.Thread.ChargeMemoryScaled(f, w.Bounce, share, true, m.bounceScale(), host.CatIO)
		pen := (w.Thread.MemoryPenalty(store, false) + bouncePen) / 2
		w.Thread.ChargeCPU(f, share*cycles*pen, host.CatIO)
	} else {
		w.Thread.ChargeMemoryScaled(f, w.Bounce, share, false, m.bounceScale(), host.CatIO)
		w.Thread.ChargeMemory(f, store, share, true, host.CatIO)
		pen := (bouncePen + w.Thread.MemoryPenalty(store, true)) / 2
		w.Thread.ChargeCPU(f, share*cycles*pen, host.CatIO)
	}
}

// AttachPath implements iscsi.StreamMover: it charges the full iSER data
// path for a continuous stream onto flow f, with `share` bytes of LUN
// traffic per flow-byte. The steady-state load is spread across the LUN's
// worker pool (each worker's bounce buffer and thread takes 1/n), and each
// worker routes through its NUMA-affine portal as in Move.
func (m *Mover) AttachPath(f *fluid.Flow, op iscsi.Op, lunID int, initBuf *numa.Buffer, share float64, tag string) {
	if share <= 0 {
		return
	}
	lun := m.Target.LUN(lunID)
	workers := m.Target.Workers(lunID)
	if lun == nil || len(workers) == 0 {
		panic(fmt.Sprintf("iser: AttachPath on unknown LUN %d", lunID))
	}
	contention := m.Target.ContentionMultiplier()
	mem := lun.Dev.MemoryBuffer()
	per := share / float64(len(workers))
	for i, w := range workers {
		// Portal choice is a pure function of (worker placement, index):
		// NUMA-affine when pinned, round-robin by worker index otherwise.
		// No shared counter — the adaptive placer re-runs this body when
		// rebuilding a flow's coefficients, and a stateful pick would make
		// replays diverge.
		p := m.route(w, i)
		switch op {
		case iscsi.OpRead:
			if mem != nil {
				m.workerCopy(f, w, mem, true, per, m.P.CopyCyclesPerByte*contention)
			} else {
				lun.Dev.AttachIO(f, false, 0, per, host.CatIO)
				w.Thread.ChargeMemoryScaled(f, w.Bounce, per, true, m.bounceScale(), host.CatIO)
				w.Thread.ChargeCPU(f, per*m.P.MediaCyclesPerByte*contention, host.CatIO)
			}
			p.TgtNIC.ChargeDMAScaled(f, w.Bounce, per, false, m.bounceScale(), tag)
			p.Link.ChargeWire(f, p.TgtNIC, per, tag)
			p.InitNIC.ChargeDMA(f, initBuf, per, true, tag)
		case iscsi.OpWrite:
			p.InitNIC.ChargeDMA(f, initBuf, per, false, tag)
			p.Link.ChargeWire(f, p.InitNIC, per*m.P.RDMA.ReadPenalty, tag)
			p.TgtNIC.ChargeDMAScaled(f, w.Bounce, per, true, m.bounceScale(), tag)
			if mem != nil {
				m.workerCopy(f, w, mem, false, per, m.P.CopyCyclesPerByte*contention)
			} else {
				lun.Dev.AttachIO(f, true, 0, per, host.CatIO)
				w.Thread.ChargeMemoryScaled(f, w.Bounce, per, false, m.bounceScale(), host.CatIO)
				w.Thread.ChargeCPU(f, per*m.P.MediaCyclesPerByte*contention, host.CatIO)
			}
		default:
			panic(fmt.Sprintf("iser: unknown op %v", op))
		}
	}
	m.InitThread.ChargeCPU(f, share*m.P.InitCyclesPerByte, host.CatSys)
}

// SendPDU implements iscsi.Mover using the first portal's latency. Control
// PDUs are small SEND messages and are not charged against bulk bandwidth.
// A PDU submitted while the portal link is dark reports ok=false, giving
// the session's recovery logic an explicit drop instead of a silent hang.
func (m *Mover) SendPDU(size float64, toTarget bool, fn func(now sim.Time, ok bool)) {
	l := m.Portals[0].Link
	m.eng.Schedule(m.P.RDMA.OpLatency, func() {
		if !l.Send(size, func(now sim.Time) { fn(now, true) }) {
			fn(m.eng.Now(), false)
		}
	})
}

// pick selects the portal for a command: a NUMA-affine portal when the
// worker is bound and a local NIC exists (the paper's per-node link
// routing), round-robin otherwise.
func (m *Mover) pick(w *iscsi.Worker) Portal {
	if p, ok := m.affine(w); ok {
		return p
	}
	p := m.Portals[m.next%len(m.Portals)]
	m.next++
	return p
}

// affine returns the portal whose target NIC shares the worker's node.
func (m *Mover) affine(w *iscsi.Worker) (Portal, bool) {
	if node := w.Thread.Node(); node != nil {
		for _, p := range m.Portals {
			if p.TgtNIC.Node == node {
				return p, true
			}
		}
	}
	return Portal{}, false
}

// route is pick without the shared round-robin counter: NUMA-affine when
// possible, otherwise indexed by i. Safe to call from placer rebuilds.
func (m *Mover) route(w *iscsi.Worker, i int) Portal {
	if p, ok := m.affine(w); ok {
		return p
	}
	return m.Portals[i%len(m.Portals)]
}

// Move implements iscsi.Mover: it builds one fluid flow carrying the
// command's full cost structure and completes after the last byte lands
// plus one propagation delay.
func (m *Mover) Move(cmd *iscsi.Command, lun *iscsi.LUN, w *iscsi.Worker, onDone func(now sim.Time)) {
	p := m.pick(w)
	tag := cmd.Tag
	if tag == "" {
		tag = "iser"
	}
	f := m.sim.NewFlow(fmt.Sprintf("iser/%s/lun%d/%s", cmd.Op, lun.ID, tag), math.Inf(1))
	m.chargeMove(f, cmd, lun, w, p)
	if m.Placer != nil {
		// Rebuilds re-derive the charges from current placement; the
		// portal upgrades to the worker's NUMA-affine one once the placer
		// pins it, and otherwise stays the captured original (never the
		// shared round-robin counter, which would diverge replays).
		m.Placer.Track(f, func(f *fluid.Flow) {
			route := p
			if aff, ok := m.affine(w); ok {
				route = aff
			}
			m.chargeMove(f, cmd, lun, w, route)
		})
	}

	delay := p.Link.OneWayDelay() + m.P.RDMA.OpLatency
	m.eng.Schedule(m.P.RDMA.OpLatency, func() {
		m.sim.Start(&fluid.Transfer{
			Flow:      f,
			Remaining: float64(cmd.Length),
			OnComplete: func(sim.Time) {
				if m.Placer != nil {
					m.Placer.Untrack(f)
				}
				m.Moved += float64(cmd.Length)
				m.eng.Schedule(delay, func() { onDone(m.eng.Now()) })
			},
		})
	})
}

// chargeMove attaches one command's full iSER cost structure to f: the
// worker copy (or media I/O) on the target, RDMA DMA at both NICs, the
// wire, initiator kernel handling, and any caller-attached charges. It is
// a pure function of current placement state, re-runnable by the placer.
func (m *Mover) chargeMove(f *fluid.Flow, cmd *iscsi.Command, lun *iscsi.LUN, w *iscsi.Worker, p Portal) {
	tag := cmd.Tag
	if tag == "" {
		tag = "iser"
	}
	contention := m.Target.ContentionMultiplier()
	mem := lun.Dev.MemoryBuffer()
	switch cmd.Op {
	case iscsi.OpRead:
		// Backing store → bounce buffer (worker copy or media read).
		if mem != nil {
			m.workerCopy(f, w, mem, true, 1, m.P.CopyCyclesPerByte*contention)
		} else {
			lun.Dev.AttachIO(f, false, cmd.Length, 1, host.CatIO)
			w.Thread.ChargeMemoryScaled(f, w.Bounce, 1, true, m.bounceScale(), host.CatIO)
			w.Thread.ChargeCPU(f, m.P.MediaCyclesPerByte*contention, host.CatIO)
		}
		// RDMA WRITE bounce → initiator buffer.
		p.TgtNIC.ChargeDMAScaled(f, w.Bounce, 1, false, m.bounceScale(), tag)
		p.Link.ChargeWire(f, p.TgtNIC, 1, tag)
		p.InitNIC.ChargeDMA(f, cmd.Buffer, 1, true, tag)
	case iscsi.OpWrite:
		// RDMA READ initiator buffer → bounce (read penalty on the wire).
		p.InitNIC.ChargeDMA(f, cmd.Buffer, 1, false, tag)
		p.Link.ChargeWire(f, p.InitNIC, m.P.RDMA.ReadPenalty, tag)
		p.TgtNIC.ChargeDMAScaled(f, w.Bounce, 1, true, m.bounceScale(), tag)
		// Bounce → backing store (coherency-sensitive write).
		if mem != nil {
			m.workerCopy(f, w, mem, false, 1, m.P.CopyCyclesPerByte*contention)
		} else {
			lun.Dev.AttachIO(f, true, cmd.Length, 1, host.CatIO)
			w.Thread.ChargeMemoryScaled(f, w.Bounce, 1, false, m.bounceScale(), host.CatIO)
			w.Thread.ChargeCPU(f, m.P.MediaCyclesPerByte*contention, host.CatIO)
		}
	default:
		panic(fmt.Sprintf("iser: unknown op %v", cmd.Op))
	}
	// Initiator-side kernel handling, plus any caller-attached charges
	// (filesystem CPU, page-cache copies).
	m.InitThread.ChargeCPU(f, m.P.InitCyclesPerByte, host.CatSys)
	if cmd.Charge != nil {
		cmd.Charge(f)
	}
}
