package iser

import (
	"math"
	"testing"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// backendRig is the paper's back-end SAN: initiator and target hosts joined
// by two FDR (56 Gbps) links, one per NUMA node pair.
type backendRig struct {
	eng    *sim.Engine
	s      *fluid.Sim
	init   *host.Host
	tgt    *host.Host
	links  []*fabric.Link
	target *iscsi.Target
	mover  *Mover
	sess   *iscsi.Session
}

func backendNUMA(name string) numa.Config {
	return numa.Config{
		Name: name, Nodes: 2, CoresPerNode: 8, CoreHz: 2.0e9,
		MemBandwidthPerNode:        22 * units.GBps,
		InterconnectBandwidth:      11.5 * units.GBps,
		RemoteAccessPenalty:        1.4,
		CoherencyWritePenalty:      8,
		CoherencySnoopBytesPerByte: 0.3,
		MemBytes:                   384 * units.GB,
	}
}

func newBackend(t *testing.T, policy numa.Policy, luns int) *backendRig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	ci, ct := backendNUMA("init"), backendNUMA("tgt")
	hi := host.New("init", numa.MustNew(s, ci))
	ht := host.New("tgt", numa.MustNew(s, ct))
	ib := func(name string, n int) *fabric.Link {
		return fabric.Connect(s, fabric.Config{
			Name: name, Rate: units.FromGbps(56), RTT: 0.144e-3,
			MTU: 65520, HeaderBytes: 80,
		}, hi, hi.M.Node(n), ht, ht.M.Node(n))
	}
	links := []*fabric.Link{ib("ib0", 0), ib("ib1", 1)}
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(policy))
	for i := 0; i < luns; i++ {
		var homes []*numa.Node
		if policy == numa.PolicyBind {
			homes = []*numa.Node{ht.M.Node(i % 2)}
		} else {
			homes = ht.M.Nodes
		}
		tg.AddLUN(i, blockdev.NewRamdisk(ht.M, "lun", 50*units.GB, homes...))
	}
	initProc := hi.NewProcess("open-iscsi", policy, nil)
	portals := []Portal{PortalFor(links[0], ht), PortalFor(links[1], ht)}
	mv := NewMover(portals, initProc.NewThread(), tg, DefaultParams())
	return &backendRig{
		eng: eng, s: s, init: hi, tgt: ht, links: links,
		target: tg, mover: mv, sess: iscsi.NewSession(tg, mv),
	}
}

func TestPortalForOrientation(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 2)
	p := PortalFor(r.links[0], r.tgt)
	if p.TgtNIC.Host != r.tgt || p.InitNIC.Host != r.init {
		t.Fatal("portal orientation wrong")
	}
	// Reversed construction also works.
	p2 := PortalFor(r.links[0], r.init)
	if p2.TgtNIC.Host != r.init {
		t.Fatal("reversed portal orientation wrong")
	}
}

func TestPortalForForeignHostPanics(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	s2 := fluid.NewSim(sim.NewEngine())
	other := host.New("other", numa.MustNew(s2, backendNUMA("other")))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PortalFor(r.links[0], other)
}

func TestMoverValidation(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	cases := []func(){
		func() { NewMover(nil, r.mover.InitThread, r.target, DefaultParams()) },
		func() { NewMover(r.mover.Portals, nil, r.target, DefaultParams()) },
		func() { NewMover(r.mover.Portals, r.mover.InitThread, nil, DefaultParams()) },
		func() {
			p := DefaultParams()
			p.RDMA.ReadPenalty = 0.5
			NewMover(r.mover.Portals, r.mover.InitThread, r.target, p)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func submitAndRun(t *testing.T, r *backendRig, op iscsi.Op, size int64) sim.Time {
	t.Helper()
	buf := r.init.M.NewBuffer("app", r.init.M.Node(0))
	var done sim.Time
	r.sess.Submit(&iscsi.Command{
		Op: op, LUN: 0, Length: size, Buffer: buf,
		OnComplete: func(now sim.Time, err error) {
			if err != nil {
				t.Fatalf("command failed: %v", err)
			}
			done = now
		},
	})
	r.eng.Run()
	if done == 0 {
		t.Fatal("command never completed")
	}
	return done
}

func TestReadCommandMovesBytes(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 2)
	submitAndRun(t, r, iscsi.OpRead, 64*units.MB)
	if r.mover.Moved != float64(64*units.MB) {
		t.Fatalf("Moved = %v, want %v", r.mover.Moved, 64*units.MB)
	}
}

func TestSCSIReadUsesTargetCPUOnlyForCopy(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 2)
	submitAndRun(t, r, iscsi.OpRead, 64*units.MB)
	// Target worker copies file→bounce: io category on the target.
	tgtRep := r.tgt.HostCPUReport()
	if tgtRep.ByCategory[host.CatIO] <= 0 {
		t.Fatal("target copy not accounted")
	}
	// Initiator pays only thin kernel handling.
	initRep := r.init.HostCPUReport()
	if initRep.ByCategory[host.CatSys] <= 0 {
		t.Fatal("initiator handling not accounted")
	}
	if initRep.Total >= tgtRep.Total {
		t.Fatalf("initiator (%v) should be cheaper than target (%v)", initRep.Total, tgtRep.Total)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	// A single command is bound by one worker thread's copy rate; the
	// RDMA READ wire penalty only shows once the links saturate, so issue
	// enough parallel commands to fill both FDR links.
	size := int64(256 * units.MB)
	run := func(op iscsi.Op) sim.Time {
		r := newBackend(t, numa.PolicyBind, 2)
		var last sim.Time
		for lun := 0; lun < 2; lun++ {
			buf := r.init.M.NewBuffer("app", r.init.M.Node(lun))
			for i := 0; i < 4; i++ {
				r.sess.Submit(&iscsi.Command{
					Op: op, LUN: lun, Length: size, Buffer: buf,
					OnComplete: func(now sim.Time, err error) {
						if err != nil {
							t.Fatalf("cmd failed: %v", err)
						}
						if now > last {
							last = now
						}
					},
				})
			}
		}
		r.eng.Run()
		return last
	}
	tRead := run(iscsi.OpRead)
	tWrite := run(iscsi.OpWrite)
	if tWrite <= tRead {
		t.Fatalf("write (%v) should be slower than read (%v): RDMA READ penalty", tWrite, tRead)
	}
	ratio := float64(tWrite) / float64(tRead)
	if ratio < 1.02 || ratio > 1.15 {
		t.Fatalf("write/read time ratio = %.3f, want ≈1.075", ratio)
	}
}

func TestAffinityRouting(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 2)
	// LUN 1 lives on node 1; its workers are bound there; traffic should
	// use ib1 (the node-1 link), not ib0.
	buf := r.init.M.NewBuffer("app", r.init.M.Node(1))
	r.sess.Submit(&iscsi.Command{
		Op: iscsi.OpRead, LUN: 1, Length: 16 * units.MB, Buffer: buf, Tag: "aff",
		OnComplete: func(sim.Time, error) {},
	})
	r.eng.Run()
	r.s.Sync()
	ib0 := r.s.Usage(r.links[0].Dir(r.links[0].B), "aff")
	ib1 := r.s.Usage(r.links[1].Dir(r.links[1].B), "aff")
	if ib1 == 0 {
		t.Fatal("node-1 LUN should use the node-1 link")
	}
	if ib0 != 0 {
		t.Fatal("node-1 LUN leaked traffic onto the node-0 link")
	}
}

func TestRoundRobinWithoutAffinity(t *testing.T) {
	r := newBackend(t, numa.PolicyDefault, 1)
	buf := r.init.M.InterleavedBuffer("app")
	for i := 0; i < 4; i++ {
		r.sess.Submit(&iscsi.Command{
			Op: iscsi.OpRead, LUN: 0, Length: 4 * units.MB, Buffer: buf, Tag: "rr",
			OnComplete: func(sim.Time, error) {},
		})
	}
	r.eng.Run()
	r.s.Sync()
	ib0 := r.s.Usage(r.links[0].Dir(r.links[0].B), "rr")
	ib1 := r.s.Usage(r.links[1].Dir(r.links[1].B), "rr")
	if ib0 == 0 || ib1 == 0 {
		t.Fatalf("round-robin should use both links (ib0=%v ib1=%v)", ib0, ib1)
	}
}

func TestDefaultPolicyWritesBurnMoreCPU(t *testing.T) {
	size := int64(256 * units.MB)
	cpuFor := func(policy numa.Policy) float64 {
		r := newBackend(t, policy, 2)
		var buf *numa.Buffer
		if policy == numa.PolicyBind {
			buf = r.init.M.NewBuffer("app", r.init.M.Node(0))
		} else {
			buf = r.init.M.InterleavedBuffer("app")
		}
		done := false
		r.sess.Submit(&iscsi.Command{
			Op: iscsi.OpWrite, LUN: 0, Length: size, Buffer: buf,
			OnComplete: func(_ sim.Time, err error) {
				if err != nil {
					t.Fatalf("cmd failed: %v", err)
				}
				done = true
			},
		})
		r.eng.Run()
		if !done {
			t.Fatal("command incomplete")
		}
		return r.tgt.HostCPUReport().ByCategory[host.CatIO]
	}
	bind := cpuFor(numa.PolicyBind)
	def := cpuFor(numa.PolicyDefault)
	ratio := def / bind
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("default/bind write CPU ratio = %.2f, want ≈3 (paper §4.2)", ratio)
	}
}

func TestSendPDULatency(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	var at sim.Time
	r.mover.SendPDU(128, true, func(now sim.Time, ok bool) {
		if !ok {
			t.Fatal("PDU dropped on a healthy link")
		}
		at = now
	})
	r.eng.Run()
	// opLatency + one-way + serialization.
	min := 5e-6 + 0.144e-3/2
	if float64(at) < min {
		t.Fatalf("PDU at %v, want ≥ %v", at, min)
	}
}

func TestSendPDUReportsDropOnDarkLink(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	r.links[0].Fail() // portal 0 carries PDUs
	delivered, dropped := false, false
	r.mover.SendPDU(128, true, func(_ sim.Time, ok bool) {
		if ok {
			delivered = true
		} else {
			dropped = true
		}
	})
	r.eng.Run()
	if delivered || !dropped {
		t.Fatalf("delivered=%v dropped=%v, want drop report on dark link", delivered, dropped)
	}
}

func TestSessionDownPropagatesThroughIser(t *testing.T) {
	// iscsi.ErrSessionDown must surface at the initiator through the real
	// iser mover, not just the in-package fakes.
	r := newBackend(t, numa.PolicyBind, 1)
	r.sess.Close()
	var got error
	called := false
	buf := r.init.M.NewBuffer("b", r.init.M.Node(0))
	r.sess.Submit(&iscsi.Command{Op: iscsi.OpRead, LUN: 0, Length: units.MB, Buffer: buf,
		OnComplete: func(_ sim.Time, err error) { got, called = err, true }})
	r.eng.Run()
	if !called {
		t.Fatal("OnComplete never fired on a closed session")
	}
	if got != iscsi.ErrSessionDown {
		t.Fatalf("err = %v, want iscsi.ErrSessionDown", got)
	}
}

func TestSessionRecoveryThroughIser(t *testing.T) {
	// A dark portal drops the command PDU; with recovery enabled the
	// session replays it after the link heals and the command completes.
	r := newBackend(t, numa.PolicyBind, 1)
	r.sess.MaxReplays = 8
	r.sess.ReplayDelay = 20 * sim.Millisecond
	r.eng.At(0.001, func() { r.links[0].Fail() })
	r.eng.At(0.1, func() { r.links[0].Restore() })
	buf := r.init.M.NewBuffer("b", r.init.M.Node(0))
	var got error
	called := false
	r.eng.At(0.002, func() {
		r.sess.Submit(&iscsi.Command{Op: iscsi.OpWrite, LUN: 0, Length: 4 * units.MB, Buffer: buf,
			OnComplete: func(_ sim.Time, err error) { got, called = err, true }})
	})
	r.eng.Run()
	if !called {
		t.Fatal("command never completed despite recovery")
	}
	if got != nil {
		t.Fatalf("err = %v, want success after replay", got)
	}
	if r.sess.Replays < 1 || r.sess.Recovered != 1 {
		t.Fatalf("replays=%d recovered=%d, want ≥1 and 1", r.sess.Replays, r.sess.Recovered)
	}
}

func TestUnknownOpPanics(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	lun := r.target.LUNs()[0]
	buf := r.init.M.NewBuffer("b", r.init.M.Node(0))
	cmd := &iscsi.Command{Op: iscsi.Op(9), LUN: 0, Length: units.MB, Buffer: buf}
	w := &iscsi.Worker{Thread: r.mover.InitThread, Bounce: buf}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown op")
		}
	}()
	r.mover.Move(cmd, lun, w, func(sim.Time) {})
	r.eng.Run()
}

func TestMoveCompletionIncludesPropagation(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	done := submitAndRun(t, r, iscsi.OpRead, units.MB)
	// Command PDU + device latency + transfer + response: ≥ 2 one-way
	// delays plus serialization.
	if float64(done) < float64(r.links[0].RTT()) {
		t.Fatalf("completion at %v implausibly fast (RTT %v)", done, r.links[0].RTT())
	}
	_ = math.Inf
}

func TestAttachPathOverMediaDevice(t *testing.T) {
	// A SAN whose LUN is an SSD: streaming reads are media-bound, and the
	// worker pays driver CPU instead of a memcpy.
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("init", numa.MustNew(s, backendNUMA("init")))
	ht := host.New("tgt", numa.MustNew(s, backendNUMA("tgt")))
	l := fabric.Connect(s, fabric.Config{Name: "ib0", Rate: units.FromGbps(56), RTT: 0.144e-3},
		hi, hi.M.Node(0), ht, ht.M.Node(0))
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(numa.PolicyBind))
	ssd := blockdev.NewSSD(s, blockdev.DefaultSSDConfig("ssd", units.TB))
	tg.AddLUN(0, ssd)
	mv := NewMover([]Portal{PortalFor(l, ht)},
		hi.NewProcess("init", numa.PolicyBind, hi.M.Node(0)).NewThread(),
		tg, DefaultParams())

	buf := hi.M.NewBuffer("app", hi.M.Node(0))
	for _, op := range []iscsi.Op{iscsi.OpRead, iscsi.OpWrite} {
		f := s.NewFlow("stream", math.Inf(1))
		mv.AttachPath(f, op, 0, buf, 1, "media-test")
		tr := &fluid.Transfer{Flow: f, Remaining: math.Inf(1)}
		s.Start(tr)
		eng.RunFor(2)
		s.Sync()
		rate := f.Rate()
		// Media-bound: ≈1.5 GB/s read / 1.3 GB/s write, far below the
		// 7 GB/s link.
		if rate > 1.6*units.GBps || rate < 0.5*units.GBps {
			t.Fatalf("%v stream rate = %v, want media-bound", op, units.ToGBps(rate))
		}
		s.Cancel(tr)
	}
}

func TestAttachPathValidation(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	buf := r.init.M.NewBuffer("b", r.init.M.Node(0))
	f := r.s.NewFlow("f", 1)
	// Zero share is a no-op.
	r.mover.AttachPath(f, iscsi.OpRead, 0, buf, 0, "x")
	if len(f.Uses) != 0 {
		t.Fatal("zero share should attach nothing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown LUN")
		}
	}()
	r.mover.AttachPath(f, iscsi.OpRead, 9, buf, 1, "x")
}

func TestAttachPathUnknownOpPanics(t *testing.T) {
	r := newBackend(t, numa.PolicyBind, 1)
	buf := r.init.M.NewBuffer("b", r.init.M.Node(0))
	f := r.s.NewFlow("f", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.mover.AttachPath(f, iscsi.Op(7), 0, buf, 1, "x")
}

func TestMoveOverMediaDevice(t *testing.T) {
	// Command-based I/O against an HDD LUN: seek-bound small blocks.
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("init", numa.MustNew(s, backendNUMA("init")))
	ht := host.New("tgt", numa.MustNew(s, backendNUMA("tgt")))
	l := fabric.Connect(s, fabric.Config{Name: "ib0", Rate: units.FromGbps(56), RTT: 0.144e-3},
		hi, hi.M.Node(0), ht, ht.M.Node(0))
	tg := iscsi.NewTarget("tgt", ht, iscsi.DefaultTargetConfig(numa.PolicyBind))
	tg.AddLUN(0, blockdev.NewHDD(s, blockdev.DefaultHDDConfig("hdd", units.TB)))
	mv := NewMover([]Portal{PortalFor(l, ht)},
		hi.NewProcess("init", numa.PolicyBind, hi.M.Node(0)).NewThread(),
		tg, DefaultParams())
	sess := iscsi.NewSession(tg, mv)
	buf := hi.M.NewBuffer("app", hi.M.Node(0))
	var done sim.Time
	sess.Submit(&iscsi.Command{
		Op: iscsi.OpRead, LUN: 0, Length: 64 * units.MB, Buffer: buf,
		OnComplete: func(now sim.Time, err error) {
			if err != nil {
				t.Fatalf("cmd failed: %v", err)
			}
			done = now
		},
	})
	eng.Run()
	// 64 MB at ≈150 MB/s ≈ 0.43 s minimum.
	if float64(done) < 0.4 {
		t.Fatalf("HDD command completed implausibly fast: %v", done)
	}
}
