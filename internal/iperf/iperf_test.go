package iperf

import (
	"testing"

	"e2edt/internal/numa"
	"e2edt/internal/testbed"
	"e2edt/internal/units"
)

func TestMotivatingExperimentShape(t *testing.T) {
	// §2.3: bi-directional, 3×40G RoCE, large buffers. Default scheduling
	// ≈83.5 Gbps aggregate; NUMA binding ≈91.8 Gbps (~10% better).
	run := func(policy numa.Policy) float64 {
		p := testbed.NewMotivatingPair()
		cfg := DefaultConfig()
		cfg.Policy = policy
		rep := Run(p.Links, cfg)
		return units.ToGbps(rep.Aggregate)
	}
	def := run(numa.PolicyDefault)
	bind := run(numa.PolicyBind)
	if def < 70 || def > 95 {
		t.Fatalf("default aggregate = %.1f Gbps, want ≈83.5", def)
	}
	if bind < 83 || bind > 105 {
		t.Fatalf("bound aggregate = %.1f Gbps, want ≈91.8", bind)
	}
	gain := bind / def
	if gain < 1.04 || gain > 1.20 {
		t.Fatalf("NUMA gain = %.3f, want ≈1.10", gain)
	}
}

func TestUnidirectionalHalvesAggregate(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Bidirectional = false
	cfg.Policy = numa.PolicyBind
	rep := Run(p.Links, cfg)
	if len(rep.PerStream) != 3 {
		t.Fatalf("streams = %d, want 3 (one per link)", len(rep.PerStream))
	}
	uni := units.ToGbps(rep.Aggregate)
	p2 := testbed.NewMotivatingPair()
	cfg.Bidirectional = true
	rep2 := Run(p2.Links, cfg)
	bidi := units.ToGbps(rep2.Aggregate)
	if bidi < uni*1.5 {
		t.Fatalf("bidirectional (%.1f) should nearly double unidirectional (%.1f)", bidi, uni)
	}
}

func TestCacheResidentFasterThanLargeBuffer(t *testing.T) {
	// iperf default (small reused buffer, cache-resident) avoids a memory
	// read per byte and can run faster when memory-bound; at minimum it
	// must not be slower.
	run := func(large bool) float64 {
		p := testbed.NewMotivatingPair()
		cfg := DefaultConfig()
		cfg.Policy = numa.PolicyBind
		cfg.LargeBuffer = large
		return Run(p.Links, cfg).Aggregate
	}
	cached := run(false)
	large := run(true)
	if cached < large {
		t.Fatalf("cache-resident (%v) should be ≥ large-buffer (%v)", cached, large)
	}
}

func TestCopyDominatesCPUProfile(t *testing.T) {
	// §2.3: copy_user_generic_string ≈35% of CPU under the default
	// scheduler. Check copy is a significant share of total CPU.
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	rep := Run(p.Links, cfg)
	_ = rep
	cpu := p.A.HostCPUReport()
	if cpu.Total <= 0 {
		t.Fatal("no CPU recorded")
	}
	copyShare := cpu.ByCategory["copy"] / cpu.Total
	if copyShare < 0.2 || copyShare > 0.55 {
		t.Fatalf("copy share = %.2f, want ≈0.35", copyShare)
	}
}

func TestSourceCyclesCharged(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cfg := DefaultConfig()
	cfg.Policy = numa.PolicyBind
	cfg.Bidirectional = false
	cfg.SourceCyclesPerByte = 0.32
	rep := Run(p.Links[:1], cfg)
	if rep.Aggregate <= 0 {
		t.Fatal("no throughput")
	}
	// Zero-fill cost appears as extra sys time on the sender.
	cpu := p.A.HostCPUReport()
	if cpu.ByCategory["load"] <= 0 {
		t.Fatal("source cycles not charged")
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	p := testbed.NewMotivatingPair()
	cases := []func(){
		func() { Run(nil, DefaultConfig()) },
		func() {
			c := DefaultConfig()
			c.StreamsPerLink = 0
			Run(p.Links, c)
		},
		func() {
			c := DefaultConfig()
			c.Duration = 0
			Run(p.Links, c)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRunLeavesNoActiveTransfers(t *testing.T) {
	p := testbed.NewMotivatingPair()
	Run(p.Links, DefaultConfig())
	if n := p.Sim.ActiveTransfers(); n != 0 {
		t.Fatalf("%d transfers leaked", n)
	}
}
