// Package iperf reimplements the iperf TCP bandwidth tool over the
// simulated stack, as used twice in the paper:
//
//   - §2.3 motivating experiment: bi-directional streams over three 40 Gbps
//     RoCE links with a cache-defeating large sender buffer, comparing the
//     default Linux scheduler against NUMA binding (83.5 → 91.8 Gbps).
//   - §3.2/Figure 4: a /dev/zero → /dev/null stream at 39 Gbps whose CPU
//     breakdown is contrasted with RFTP's.
//
// Each stream is one TCP connection; under NUMA tuning the per-link worker
// threads are bound to the NIC's NUMA node, otherwise they float.
package iperf

import (
	"fmt"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/placer"
	"e2edt/internal/sim"
	"e2edt/internal/tcpstack"
	"e2edt/internal/units"
)

// Config parameterizes a run.
type Config struct {
	// StreamsPerLink is the TCP connection count per link per direction.
	StreamsPerLink int
	// Policy: PolicyBind pins each stream's threads to its NIC's node;
	// PolicyDefault leaves them to the scheduler.
	Policy numa.Policy
	// LargeBuffer makes the sender cycle through a buffer larger than
	// cache, so every send pays a real memory read (the paper's trick to
	// defeat iperf's default cache-resident behaviour).
	LargeBuffer bool
	// SourceCyclesPerByte models data-generation cost (≈0.32 cyc/B for
	// the kernel zero-fill when reading /dev/zero; ~0 otherwise).
	SourceCyclesPerByte float64
	// Bidirectional runs streams both ways simultaneously.
	Bidirectional bool
	// Duration is the measurement window.
	Duration sim.Duration
	// TCP is the kernel stack cost model.
	TCP tcpstack.Params
}

// DefaultConfig mirrors the §2.3 setup.
func DefaultConfig() Config {
	return Config{
		StreamsPerLink: 1,
		Policy:         numa.PolicyDefault,
		LargeBuffer:    true,
		Bidirectional:  true,
		Duration:       10,
		TCP:            tcpstack.DefaultParams(),
	}
}

// Report summarizes a run.
type Report struct {
	// Aggregate is total payload bandwidth across all streams and
	// directions, bytes/second.
	Aggregate float64
	// PerStream lists each stream's bandwidth in creation order.
	PerStream []float64
	// Elapsed is the measurement window in seconds.
	Elapsed float64
	// Placements and Migrations count adaptive-placer commits (PolicyAuto
	// runs only; zero otherwise).
	Placements int
	Migrations int
}

// Run executes iperf over the given links and returns the measured report.
// Sender-side processes are named "iperf-c", receivers "iperf-s", so CPU
// reports can be split per role.
func Run(links []*fabric.Link, cfg Config) Report {
	if len(links) == 0 {
		panic("iperf: no links")
	}
	if cfg.StreamsPerLink <= 0 || cfg.Duration <= 0 {
		panic("iperf: StreamsPerLink and Duration must be positive")
	}
	s := links[0].Sim()
	eng := links[0].Engine()

	// Under PolicyAuto an adaptive engine places each stream's endpoints at
	// runtime; threads start unpinned and buffers interleaved, exactly like
	// PolicyDefault, and converge from there.
	var auto *placer.Engine
	if cfg.Policy == numa.PolicyAuto {
		auto = placer.New(s, placer.DefaultConfig())
	}

	var transfers []*fluid.Transfer
	mkStream := func(l *fabric.Link, from *host.Device) {
		to := l.Peer(from)
		sndHost, rcvHost := from.Host, to.Host
		var sndProc, rcvProc *host.Process
		if cfg.Policy == numa.PolicyBind {
			sndProc = sndHost.NewProcess(fmt.Sprintf("iperf-c/%s", l.Cfg.Name), numa.PolicyBind, from.Node)
			rcvProc = rcvHost.NewProcess(fmt.Sprintf("iperf-s/%s", l.Cfg.Name), numa.PolicyBind, to.Node)
		} else {
			sndProc = sndHost.NewProcess(fmt.Sprintf("iperf-c/%s", l.Cfg.Name), cfg.Policy, nil)
			rcvProc = rcvHost.NewProcess(fmt.Sprintf("iperf-s/%s", l.Cfg.Name), cfg.Policy, nil)
		}
		for i := 0; i < cfg.StreamsPerLink; i++ {
			snd := sndProc.NewThread()
			rcv := rcvProc.NewThread()
			conn := tcpstack.Dial(l, from, snd, rcv, cfg.TCP)
			opt := tcpstack.FlowOptions{}
			if cfg.LargeBuffer {
				if node := snd.Node(); node != nil {
					opt.SrcBuf = sndHost.M.NewBuffer("iperf-src", node)
				} else {
					opt.SrcBuf = sndHost.M.InterleavedBuffer("iperf-src")
				}
			}
			if cfg.SourceCyclesPerByte > 0 {
				cy := cfg.SourceCyclesPerByte
				opt.Extra = func(f *fluid.Flow) {
					snd.ChargeCPU(f, cy, host.CatLoad)
				}
			}
			tr := conn.Stream(1e30, opt, nil)
			transfers = append(transfers, tr)
			if auto != nil {
				var sndBufs []*numa.Buffer
				if opt.SrcBuf != nil {
					sndBufs = append(sndBufs, opt.SrcBuf)
				}
				// The cache-defeating source buffer's hot working set is
				// what a lazy page migration actually copies.
				auto.AddEntity(fmt.Sprintf("iperf-c/%s/%d", l.Cfg.Name, i),
					sndHost.M, []*host.Thread{snd}, sndBufs, 64*float64(units.MB))
				auto.AddEntity(fmt.Sprintf("iperf-s/%s/%d", l.Cfg.Name, i),
					rcvHost.M, []*host.Thread{rcv}, nil, 0)
				o := opt
				auto.Track(tr.Flow, func(f *fluid.Flow) { conn.Recharge(f, o) })
			}
		}
	}

	for _, l := range links {
		mkStream(l, l.A)
		if cfg.Bidirectional {
			mkStream(l, l.B)
		}
	}

	start := eng.Now()
	eng.RunUntil(start + sim.Time(cfg.Duration))
	s.Sync()
	rep := Report{Elapsed: float64(cfg.Duration)}
	for _, tr := range transfers {
		bw := tr.Transferred() / float64(cfg.Duration)
		rep.PerStream = append(rep.PerStream, bw)
		rep.Aggregate += bw
		if auto != nil {
			auto.Untrack(tr.Flow)
		}
		s.Cancel(tr)
	}
	if auto != nil {
		rep.Placements = auto.Placements()
		rep.Migrations = auto.Migrations()
	}
	return rep
}
