package rdma

import (
	"math"
	"testing"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

type rig struct {
	eng  *sim.Engine
	s    *fluid.Sim
	ha   *host.Host
	hb   *host.Host
	link *fabric.Link
	qp   *QP
}

func newRig(t *testing.T, linkCfg fabric.Config, p Params) *rig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	cfg := numa.Config{
		Name: "m", Nodes: 2, CoresPerNode: 8, CoreHz: 2.2e9,
		MemBandwidthPerNode:   25 * units.GBps,
		InterconnectBandwidth: 16 * units.GBps,
		RemoteAccessPenalty:   1.4, CoherencyWritePenalty: 3,
	}
	ca, cb := cfg, cfg
	ca.Name, cb.Name = "A", "B"
	ha := host.New("A", numa.MustNew(s, ca))
	hb := host.New("B", numa.MustNew(s, cb))
	l := fabric.Connect(s, linkCfg, ha, ha.M.Node(0), hb, hb.M.Node(0))
	return &rig{eng: eng, s: s, ha: ha, hb: hb, link: l, qp: NewQP(l, p)}
}

func lanCfg() fabric.Config {
	return fabric.Config{Name: "roce", Rate: units.FromGbps(40), RTT: 0.166e-3}
}

func TestWriteMovesDataAtLineRate(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	dst := r.hb.M.NewBuffer("dst", r.hb.M.Node(0))
	lmr := r.qp.RegisterMR("src", r.link.A, src)
	rmr := r.qp.RegisterMR("dst", r.link.B, dst)
	size := float64(1 * units.GB)
	var doneAt sim.Time
	r.qp.Write(lmr, rmr, size, "data", func(now sim.Time) { doneAt = now })
	r.eng.Run()
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	// Expected: opLatency + size/5GB/s + one-way delay ≈ 0.2148s.
	want := 5e-6 + size/units.FromGbps(40) + 0.166e-3/2
	if math.Abs(float64(doneAt)-want) > 1e-6 {
		t.Fatalf("completed at %v, want %v", doneAt, want)
	}
	if r.qp.Posted != 1 || r.qp.Completed != 1 {
		t.Fatalf("posted/completed = %d/%d", r.qp.Posted, r.qp.Completed)
	}
}

func TestWriteConsumesNoCPU(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	dst := r.hb.M.NewBuffer("dst", r.hb.M.Node(0))
	lmr := r.qp.RegisterMR("src", r.link.A, src)
	rmr := r.qp.RegisterMR("dst", r.link.B, dst)
	r.qp.Write(lmr, rmr, float64(units.GB), "data", nil)
	r.eng.Run()
	if got := r.ha.HostCPUReport().Total; got != 0 {
		t.Fatalf("sender CPU = %v, want 0 (zero-copy DMA)", got)
	}
	if got := r.hb.HostCPUReport().Total; got != 0 {
		t.Fatalf("receiver CPU = %v, want 0", got)
	}
}

func TestReadSlowerThanWrite(t *testing.T) {
	size := float64(4 * units.GB)
	run := func(read bool) sim.Time {
		r := newRig(t, lanCfg(), DefaultParams())
		a := r.ha.M.NewBuffer("a", r.ha.M.Node(0))
		b := r.hb.M.NewBuffer("b", r.hb.M.Node(0))
		amr := r.qp.RegisterMR("a", r.link.A, a)
		bmr := r.qp.RegisterMR("b", r.link.B, b)
		var done sim.Time
		if read {
			r.qp.Read(amr, bmr, size, "data", func(now sim.Time) { done = now })
		} else {
			r.qp.Write(amr, bmr, size, "data", func(now sim.Time) { done = now })
		}
		r.eng.Run()
		return done
	}
	tw := run(false)
	tr := run(true)
	if tr <= tw {
		t.Fatalf("read (%v) should be slower than write (%v)", tr, tw)
	}
	ratio := float64(tr) / float64(tw)
	if ratio < 1.05 || ratio > 1.11 {
		t.Fatalf("read/write time ratio = %v, want ≈1.075", ratio)
	}
}

func TestSendDeliversAfterDelay(t *testing.T) {
	r := newRig(t, fabric.Config{Name: "l", Rate: 1000, RTT: 0.2}, DefaultParams())
	var at sim.Time
	r.qp.Send(100, func(now sim.Time) { at = now })
	r.eng.Run()
	// opLatency 5μs + one-way 0.1 + serialization 0.1.
	want := 5e-6 + 0.1 + 0.1
	if math.Abs(float64(at)-want) > 1e-9 {
		t.Fatalf("send delivered at %v, want %v", at, want)
	}
}

func TestSendDefaultSize(t *testing.T) {
	p := DefaultParams()
	r := newRig(t, fabric.Config{Name: "l", Rate: 1000, RTT: 0}, p)
	var at sim.Time
	r.qp.Send(0, func(now sim.Time) { at = now })
	r.eng.Run()
	want := float64(p.OpLatency) + p.ControlBytes/1000
	if math.Abs(float64(at)-want) > 1e-9 {
		t.Fatalf("default-size send at %v, want %v", at, want)
	}
}

func TestPipelinedWritesSaturateLink(t *testing.T) {
	// Many outstanding writes: aggregate throughput = line rate even
	// though each op pays latency.
	r := newRig(t, lanCfg(), DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	dst := r.hb.M.NewBuffer("dst", r.hb.M.Node(0))
	lmr := r.qp.RegisterMR("src", r.link.A, src)
	rmr := r.qp.RegisterMR("dst", r.link.B, dst)
	block := float64(4 * units.MB)
	var completed int
	var issue func()
	outstanding := 8
	total := 200
	issued := 0
	issue = func() {
		if issued >= total {
			return
		}
		issued++
		r.qp.Write(lmr, rmr, block, "data", func(sim.Time) {
			completed++
			issue()
		})
	}
	for i := 0; i < outstanding; i++ {
		issue()
	}
	r.eng.Run()
	if completed != total {
		t.Fatalf("completed %d, want %d", completed, total)
	}
	elapsed := float64(r.eng.Now())
	gput := float64(total) * block / elapsed
	if units.ToGbps(gput) < 38.5 {
		t.Fatalf("pipelined goodput = %v Gbps, want ≈40", units.ToGbps(gput))
	}
}

func TestRemoteBufferWriteCrossesReceiverInterconnect(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	// Destination buffer on the receiver's node 1, NIC on node 0.
	dst := r.hb.M.NewBuffer("dst", r.hb.M.Node(1))
	lmr := r.qp.RegisterMR("src", r.link.A, src)
	rmr := r.qp.RegisterMR("dst", r.link.B, dst)
	r.qp.Write(lmr, rmr, float64(units.GB), "data", nil)
	r.eng.Run()
	r.s.Sync()
	qpi := r.hb.M.Link(r.hb.M.Node(0), r.hb.M.Node(1))
	if r.s.Usage(qpi, "data") == 0 {
		t.Fatal("NUMA-remote RDMA target should cross receiver QPI")
	}
}

func TestRegisterMRValidation(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	other := r.ha.NewDevice("other", r.ha.M.Node(0))
	buf := r.ha.M.NewBuffer("b", r.ha.M.Node(0))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering MR on foreign NIC")
		}
	}()
	r.qp.RegisterMR("bad", other, buf)
}

func TestSameEndpointOpPanics(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	b1 := r.ha.M.NewBuffer("b1", r.ha.M.Node(0))
	b2 := r.ha.M.NewBuffer("b2", r.ha.M.Node(0))
	m1 := r.qp.RegisterMR("m1", r.link.A, b1)
	m2 := r.qp.RegisterMR("m2", r.link.A, b2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for same-endpoint RDMA op")
		}
	}()
	r.qp.Write(m1, m2, 100, "x", nil)
}

func TestBadParamsPanic(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ReadPenalty < 1")
		}
	}()
	NewQP(r.link, Params{ReadPenalty: 0.9})
}

func TestWANWriteIncludesPropagation(t *testing.T) {
	wan := fabric.Config{Name: "wan", Rate: units.FromGbps(40), RTT: 0.095}
	r := newRig(t, wan, DefaultParams())
	src := r.ha.M.NewBuffer("src", r.ha.M.Node(0))
	dst := r.hb.M.NewBuffer("dst", r.hb.M.Node(0))
	lmr := r.qp.RegisterMR("src", r.link.A, src)
	rmr := r.qp.RegisterMR("dst", r.link.B, dst)
	size := float64(units.MB)
	var done sim.Time
	r.qp.Write(lmr, rmr, size, "x", func(now sim.Time) { done = now })
	r.eng.Run()
	want := 5e-6 + size/units.FromGbps(40) + 0.0475
	if math.Abs(float64(done)-want) > 1e-6 {
		t.Fatalf("WAN write done at %v, want %v", done, want)
	}
}

// mrPair registers a source MR on A and a destination MR on B.
func (r *rig) mrPair(t *testing.T) (*MR, *MR) {
	t.Helper()
	src := r.ha.M.NewBuffer("fsrc", r.ha.M.Node(0))
	dst := r.hb.M.NewBuffer("fdst", r.hb.M.Node(0))
	return r.qp.RegisterMR("fsrc", r.link.A, src), r.qp.RegisterMR("fdst", r.link.B, dst)
}

func TestOpTimeoutErrorsQP(t *testing.T) {
	p := DefaultParams()
	p.OpTimeout = 50 * sim.Millisecond
	r := newRig(t, lanCfg(), p)
	lmr, rmr := r.mrPair(t)
	r.link.Fail() // dark before the post: DMA never progresses
	r.qp.Reset()  // clear the error the failure itself raised
	var st Status
	var at sim.Time
	r.qp.WriteStatus(lmr, rmr, float64(units.GB), "x", func(now sim.Time, s Status) {
		st, at = s, now
	})
	var errSt Status
	r.qp.OnError = func(_ sim.Time, s Status) { errSt = s }
	r.eng.Run()
	if st != StatusTimeout {
		t.Fatalf("status = %v, want StatusTimeout", st)
	}
	if math.Abs(float64(at)-float64(p.OpTimeout)) > 1e-9 {
		t.Fatalf("timed out at %v, want %v", at, sim.Time(p.OpTimeout))
	}
	if errSt != StatusTimeout {
		t.Fatalf("OnError status = %v, want StatusTimeout", errSt)
	}
	if !r.qp.Errored() {
		t.Fatal("QP should be in error state after op timeout")
	}
	if r.qp.Errors != 1 || r.qp.Completed != 0 {
		t.Fatalf("errors/completed = %d/%d, want 1/0", r.qp.Errors, r.qp.Completed)
	}
}

func TestLinkFailureFlushesOutstanding(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	lmr, rmr := r.mrPair(t)
	statuses := map[Status]int{}
	for i := 0; i < 3; i++ {
		r.qp.WriteStatus(lmr, rmr, float64(units.GB), "x", func(_ sim.Time, s Status) {
			statuses[s]++
		})
	}
	var errAt sim.Time
	r.qp.OnError = func(now sim.Time, s Status) { errAt = now }
	r.eng.Schedule(10*sim.Millisecond, func() { r.link.Fail() })
	r.eng.Run()
	if statuses[StatusFlushed] != 3 {
		t.Fatalf("flushed = %d, want 3 (got %v)", statuses[StatusFlushed], statuses)
	}
	if float64(errAt) != 10e-3 {
		t.Fatalf("OnError at %v, want 10ms", errAt)
	}
	if r.qp.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after flush", r.qp.Outstanding())
	}
}

func TestPostToErroredQPFlushes(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	lmr, rmr := r.mrPair(t)
	r.qp.InjectError()
	var st Status
	fired := 0
	r.qp.WriteStatus(lmr, rmr, 1000, "x", func(_ sim.Time, s Status) { st, fired = s, fired+1 })
	r.eng.Run()
	if fired != 1 || st != StatusFlushed {
		t.Fatalf("fired=%d status=%v, want 1/StatusFlushed", fired, st)
	}
}

func TestResetReturnsQPToService(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	lmr, rmr := r.mrPair(t)
	r.qp.InjectError()
	r.qp.Reset()
	if r.qp.Errored() {
		t.Fatal("QP still errored after Reset")
	}
	var st Status = -1
	r.qp.WriteStatus(lmr, rmr, float64(units.MB), "x", func(_ sim.Time, s Status) { st = s })
	r.eng.Run()
	if st != StatusOK {
		t.Fatalf("post-Reset write status = %v, want StatusOK", st)
	}
}

func TestErrorBurstErrorsQPWithoutCapacityChange(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	r.link.InjectErrorBurst()
	if !r.qp.Errored() {
		t.Fatal("error burst should move QP to error state")
	}
	if r.link.Fraction() != 1 {
		t.Fatalf("link fraction = %v, want 1 (burst leaves capacity alone)", r.link.Fraction())
	}
}

func TestTimeoutRacesCompletion(t *testing.T) {
	// Op finishes well before the timeout: timer must be cancelled, no
	// spurious error later.
	p := DefaultParams()
	p.OpTimeout = 10 // seconds, far beyond the op
	r := newRig(t, lanCfg(), p)
	lmr, rmr := r.mrPair(t)
	var st Status = -1
	fired := 0
	r.qp.WriteStatus(lmr, rmr, float64(units.MB), "x", func(_ sim.Time, s Status) { st, fired = s, fired+1 })
	r.eng.Run()
	if fired != 1 || st != StatusOK {
		t.Fatalf("fired=%d status=%v, want 1/StatusOK", fired, st)
	}
	if r.qp.Errored() {
		t.Fatal("QP errored after clean completion")
	}
}

func TestSendOnDarkLinkCountsError(t *testing.T) {
	r := newRig(t, lanCfg(), DefaultParams())
	r.link.Fail()
	r.qp.Reset()
	delivered := false
	r.qp.Send(100, func(sim.Time) { delivered = true })
	r.eng.Run()
	if delivered {
		t.Fatal("send delivered on a dark link")
	}
	if r.qp.Errors != 1 {
		t.Fatalf("errors = %d, want 1", r.qp.Errors)
	}
	if r.link.Drops != 1 {
		t.Fatalf("link drops = %d, want 1", r.link.Drops)
	}
}
