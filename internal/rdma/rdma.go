// Package rdma implements a verbs-style RDMA layer over the simulated
// fabric: memory regions, queue pairs, one-sided RDMA READ/WRITE and
// two-sided SEND/RECV, with completion callbacks in virtual time.
//
// The layer encodes the cost structure that gives RDMA its advantage in the
// paper:
//
//   - Zero copy: payload moves by NIC DMA only, charging memory-controller
//     (and, for NUMA-remote buffers, interconnect) bandwidth but no CPU.
//   - Kernel bypass: the only CPU cost is the user-space work-request post,
//     charged by the caller per block, not per byte.
//   - RDMA READ is slightly less efficient than RDMA WRITE on the wire
//     (the paper measures ≈7.5%: read requests add a round trip per
//     message and responder-side scheduling), expressed as a wire-usage
//     penalty multiplier.
package rdma

import (
	"fmt"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Params calibrates the verbs layer.
type Params struct {
	// ReadPenalty (≥1) multiplies wire usage for RDMA READ, reflecting the
	// paper's observation that RDMA WRITE outperforms RDMA READ by ~7.5%.
	ReadPenalty float64
	// OpLatency is the fixed NIC/driver processing latency per operation.
	OpLatency sim.Duration
	// ControlBytes is the size of a SEND-based control message used for
	// latency computation when the caller does not specify one.
	ControlBytes float64
}

// DefaultParams returns values calibrated to the paper's measurements.
func DefaultParams() Params {
	return Params{
		ReadPenalty:  1.075,
		OpLatency:    5 * sim.Microsecond,
		ControlBytes: 256,
	}
}

// MR is a registered memory region: a NUMA-placed buffer pinned for DMA.
type MR struct {
	Name string
	Buf  *numa.Buffer
	// NIC is the device the region was registered on.
	NIC *host.Device
}

// QP is a reliable-connection queue pair bound to one link. Both endpoints
// share the QP object; direction is inferred from the MRs passed to each
// operation.
type QP struct {
	Link   *fabric.Link
	Params Params
	sim    *fluid.Sim
	eng    *sim.Engine

	// Posted counts work requests posted, for diagnostics.
	Posted int64
	// Completed counts completions delivered.
	Completed int64
}

// NewQP creates a queue pair over the link.
func NewQP(l *fabric.Link, p Params) *QP {
	if p.ReadPenalty < 1 {
		panic(fmt.Sprintf("rdma: ReadPenalty %v < 1", p.ReadPenalty))
	}
	if p.OpLatency < 0 {
		panic("rdma: negative OpLatency")
	}
	return &QP{Link: l, Params: p, sim: l.Sim(), eng: l.Engine()}
}

// RegisterMR registers buf for DMA on nic. nic must be an endpoint of the
// QP's link.
func (q *QP) RegisterMR(name string, nic *host.Device, buf *numa.Buffer) *MR {
	if nic != q.Link.A && nic != q.Link.B {
		panic(fmt.Sprintf("rdma: NIC %s not on link %s", nic.Name, q.Link.Cfg.Name))
	}
	return &MR{Name: name, Buf: buf, NIC: nic}
}

// opposite verifies local/remote MRs sit on opposite ends of the link.
func (q *QP) opposite(local, remote *MR) {
	if local.NIC == remote.NIC {
		panic(fmt.Sprintf("rdma: MRs %s and %s on the same endpoint", local.Name, remote.Name))
	}
}

// Write posts a one-sided RDMA WRITE moving size bytes from local to
// remote. onDone fires at the initiator when the transfer's last byte has
// been placed (reliable-connection acknowledged completion: one extra
// one-way delay).
func (q *QP) Write(local, remote *MR, size float64, tag string, onDone func(now sim.Time)) {
	q.opposite(local, remote)
	q.post(local, remote, size, 1, tag, onDone)
}

// Read posts a one-sided RDMA READ pulling size bytes from remote into
// local. The request first crosses the wire (one-way delay), then data
// flows back with the read wire penalty.
func (q *QP) Read(local, remote *MR, size float64, tag string, onDone func(now sim.Time)) {
	q.opposite(local, remote)
	q.Posted++
	q.eng.Schedule(q.Params.OpLatency+q.Link.OneWayDelay(), func() {
		// Responder streams data back: source NIC is the remote side.
		q.start(remote, local, size, q.Params.ReadPenalty, tag, onDone)
	})
}

// Send posts a two-sided SEND of size bytes; onRecv fires at the receiver
// after serialization and propagation. Control-plane messages are not
// charged against bulk bandwidth.
func (q *QP) Send(size float64, onRecv func(now sim.Time)) {
	if size <= 0 {
		size = q.Params.ControlBytes
	}
	q.Posted++
	q.eng.Schedule(q.Params.OpLatency, func() {
		q.Link.Send(size, func(now sim.Time) {
			q.Completed++
			onRecv(now)
		})
	})
}

// post issues the DMA for a write-direction op after the post latency.
func (q *QP) post(src, dst *MR, size float64, wirePenalty float64, tag string, onDone func(sim.Time)) {
	q.Posted++
	q.eng.Schedule(q.Params.OpLatency, func() {
		q.start(src, dst, size, wirePenalty, tag, onDone)
	})
}

// start creates the fluid transfer for payload moving src→dst.
func (q *QP) start(src, dst *MR, size float64, wirePenalty float64, tag string, onDone func(sim.Time)) {
	f := q.sim.NewFlow(fmt.Sprintf("rdma/%s->%s", src.Name, dst.Name), wireDemand)
	src.NIC.ChargeDMA(f, src.Buf, 1, false, tag)
	q.Link.ChargeWire(f, src.NIC, wirePenalty, tag)
	dst.NIC.ChargeDMA(f, dst.Buf, 1, true, tag)
	delay := q.Link.OneWayDelay()
	q.sim.Start(&fluid.Transfer{
		Flow:      f,
		Remaining: size,
		OnComplete: func(sim.Time) {
			// Completion surfaces after the tail propagates.
			q.eng.Schedule(delay, func() {
				q.Completed++
				if onDone != nil {
					onDone(q.eng.Now())
				}
			})
		},
	})
}

// wireDemand is effectively unbounded; link and memory resources bound ops.
var wireDemand = func() float64 {
	return 1e30 // avoid math.Inf to keep demand arithmetic finite
}()
