// Package rdma implements a verbs-style RDMA layer over the simulated
// fabric: memory regions, queue pairs, one-sided RDMA READ/WRITE and
// two-sided SEND/RECV, with completion callbacks in virtual time.
//
// The layer encodes the cost structure that gives RDMA its advantage in the
// paper:
//
//   - Zero copy: payload moves by NIC DMA only, charging memory-controller
//     (and, for NUMA-remote buffers, interconnect) bandwidth but no CPU.
//   - Kernel bypass: the only CPU cost is the user-space work-request post,
//     charged by the caller per block, not per byte.
//   - RDMA READ is slightly less efficient than RDMA WRITE on the wire
//     (the paper measures ≈7.5%: read requests add a round trip per
//     message and responder-side scheduling), expressed as a wire-usage
//     penalty multiplier.
package rdma

import (
	"fmt"

	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
)

// Status is the completion status of a posted work request, mirroring the
// verbs CQE status codes this simulation distinguishes.
type Status int

const (
	// StatusOK: the op completed successfully (IBV_WC_SUCCESS).
	StatusOK Status = iota
	// StatusTimeout: the op exceeded Params.OpTimeout — the RC retry count
	// was exhausted (IBV_WC_RETRY_EXC_ERR). The QP enters the error state.
	StatusTimeout
	// StatusQPError: the op was aborted because the QP entered the error
	// state (link down or injected error burst) while it was in flight.
	StatusQPError
	// StatusFlushed: the op was posted to, or drained from, a QP already in
	// the error state (IBV_WC_WR_FLUSH_ERR).
	StatusFlushed
)

// String names the status like a CQE status code.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTimeout:
		return "retry-exceeded"
	case StatusQPError:
		return "qp-error"
	default:
		return "flushed"
	}
}

// Err returns nil for StatusOK and a descriptive error otherwise.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return fmt.Errorf("rdma: completion status %s", s)
}

// Params calibrates the verbs layer.
type Params struct {
	// ReadPenalty (≥1) multiplies wire usage for RDMA READ, reflecting the
	// paper's observation that RDMA WRITE outperforms RDMA READ by ~7.5%.
	ReadPenalty float64
	// OpLatency is the fixed NIC/driver processing latency per operation.
	OpLatency sim.Duration
	// ControlBytes is the size of a SEND-based control message used for
	// latency computation when the caller does not specify one.
	ControlBytes float64
	// OpTimeout, when positive, bounds how long a posted RDMA READ/WRITE
	// may stay outstanding: on expiry the op completes with StatusTimeout
	// and the QP enters the error state, like an RC QP exhausting its retry
	// count. Zero disables the timer — ops on a dark link then hang until
	// the link event itself errors the QP.
	OpTimeout sim.Duration
}

// DefaultParams returns values calibrated to the paper's measurements.
func DefaultParams() Params {
	return Params{
		ReadPenalty:  1.075,
		OpLatency:    5 * sim.Microsecond,
		ControlBytes: 256,
	}
}

// MR is a registered memory region: a NUMA-placed buffer pinned for DMA.
type MR struct {
	Name string
	Buf  *numa.Buffer
	// NIC is the device the region was registered on.
	NIC *host.Device
}

// QP is a reliable-connection queue pair bound to one link. Both endpoints
// share the QP object; direction is inferred from the MRs passed to each
// operation.
//
// Like a real RC QP, the pair has an error state: a link failure, an
// injected error burst, or an op timeout moves the QP to error, flushes
// every outstanding op with an error completion, and fails subsequent
// posts with StatusFlushed until Reset returns the QP to service.
type QP struct {
	Link   *fabric.Link
	Params Params
	sim    *fluid.Sim
	eng    *sim.Engine

	// Posted counts work requests posted, for diagnostics.
	Posted int64
	// Completed counts successful completions delivered.
	Completed int64
	// Errors counts error completions delivered (timeouts, flushes).
	Errors int64
	// OnError, when set, fires once per transition into the error state
	// with the status that caused it. Protocol layers hook session
	// re-establishment here.
	OnError func(now sim.Time, st Status)

	errored     bool
	outstanding []*op
}

// op is one tracked work request in flight.
type op struct {
	kind    string
	onDone  func(sim.Time, Status)
	post    *sim.Event      // pending post/request-propagation phase
	tr      *fluid.Transfer // in-flight DMA phase
	timeout *sim.Event
	done    bool
}

// NewQP creates a queue pair over the link. The QP watches the link: a
// failure or error burst moves it to the error state.
func NewQP(l *fabric.Link, p Params) *QP {
	if p.ReadPenalty < 1 {
		panic(fmt.Sprintf("rdma: ReadPenalty %v < 1", p.ReadPenalty))
	}
	if p.OpLatency < 0 {
		panic("rdma: negative OpLatency")
	}
	if p.OpTimeout < 0 {
		panic("rdma: negative OpTimeout")
	}
	q := &QP{Link: l, Params: p, sim: l.Sim(), eng: l.Engine()}
	l.Watch(func(ev fabric.Event) {
		switch ev.Kind {
		case fabric.EventDown, fabric.EventErrorBurst:
			q.enterError(StatusQPError)
		}
	})
	return q
}

// Errored reports whether the QP is in the error state.
func (q *QP) Errored() bool { return q.errored }

// Outstanding returns the number of tracked ops in flight.
func (q *QP) Outstanding() int { return len(q.outstanding) }

// Reset returns an errored QP to service (RESET→INIT→RTR→RTS in one step;
// the state-machine walk is below the simulation's timing resolution).
// Outstanding ops were already flushed when the QP errored.
func (q *QP) Reset() { q.errored = false }

// InjectError forces the QP into the error state, flushing outstanding
// ops — the hook used by the fault plane to model spurious CQE errors that
// are not tied to a link transition.
func (q *QP) InjectError() { q.enterError(StatusQPError) }

// enterError transitions the QP into the error state exactly once,
// flushing every outstanding op with StatusFlushed, then reporting the
// transition through OnError.
func (q *QP) enterError(st Status) {
	if q.errored {
		return
	}
	q.errored = true
	q.eng.Tracef("rdma", "QP on %s entered error state (%s)", q.Link.Cfg.Name, st)
	flush := q.outstanding
	q.outstanding = nil
	for _, o := range flush {
		q.abortOp(o)
		q.deliver(o, StatusFlushed)
	}
	if q.OnError != nil {
		q.OnError(q.eng.Now(), st)
	}
}

// abortOp cancels an op's pending phases (post event, DMA transfer, timer).
func (q *QP) abortOp(o *op) {
	if o.post != nil {
		q.eng.Cancel(o.post)
		o.post = nil
	}
	if o.tr != nil && o.tr.Active() {
		q.sim.Cancel(o.tr)
	}
	if o.timeout != nil {
		q.eng.Cancel(o.timeout)
		o.timeout = nil
	}
}

// deliver fires an op's completion exactly once and updates counters.
func (q *QP) deliver(o *op, st Status) {
	if o.done {
		return
	}
	o.done = true
	if o.timeout != nil {
		q.eng.Cancel(o.timeout)
		o.timeout = nil
	}
	if st == StatusOK {
		q.Completed++
	} else {
		q.Errors++
		q.eng.Tracef("rdma", "%s on %s completed with %s", o.kind, q.Link.Cfg.Name, st)
	}
	if o.onDone != nil {
		o.onDone(q.eng.Now(), st)
	}
}

// finish removes a completed op from the outstanding set and delivers.
func (q *QP) finish(o *op, st Status) {
	for i, e := range q.outstanding {
		if e == o {
			q.outstanding = append(q.outstanding[:i], q.outstanding[i+1:]...)
			break
		}
	}
	q.deliver(o, st)
}

// expire handles an op timeout: the op gets an error completion and the
// QP enters the error state (flushing everything else outstanding).
func (q *QP) expire(o *op) {
	if o.done {
		return
	}
	q.abortOp(o)
	q.finish(o, StatusTimeout)
	q.enterError(StatusTimeout)
}

// track registers a new op; posting to an errored QP flushes immediately
// (after the post latency, as the NIC would).
func (q *QP) track(kind string, onDone func(sim.Time, Status)) (*op, bool) {
	q.Posted++
	o := &op{kind: kind, onDone: onDone}
	if q.errored {
		q.eng.Schedule(q.Params.OpLatency, func() { q.deliver(o, StatusFlushed) })
		return o, false
	}
	q.outstanding = append(q.outstanding, o)
	if q.Params.OpTimeout > 0 {
		o.timeout = q.eng.Schedule(q.Params.OpTimeout, func() { q.expire(o) })
	}
	return o, true
}

// RegisterMR registers buf for DMA on nic. nic must be an endpoint of the
// QP's link.
func (q *QP) RegisterMR(name string, nic *host.Device, buf *numa.Buffer) *MR {
	if nic != q.Link.A && nic != q.Link.B {
		panic(fmt.Sprintf("rdma: NIC %s not on link %s", nic.Name, q.Link.Cfg.Name))
	}
	return &MR{Name: name, Buf: buf, NIC: nic}
}

// opposite verifies local/remote MRs sit on opposite ends of the link.
func (q *QP) opposite(local, remote *MR) {
	if local.NIC == remote.NIC {
		panic(fmt.Sprintf("rdma: MRs %s and %s on the same endpoint", local.Name, remote.Name))
	}
}

// Write posts a one-sided RDMA WRITE moving size bytes from local to
// remote. onDone fires at the initiator when the transfer's last byte has
// been placed (reliable-connection acknowledged completion: one extra
// one-way delay). On an error completion onDone is not called; use
// WriteStatus (or the QP's OnError hook) to observe errors.
func (q *QP) Write(local, remote *MR, size float64, tag string, onDone func(now sim.Time)) {
	q.WriteStatus(local, remote, size, tag, okOnly(onDone))
}

// WriteStatus is Write with an explicit completion status: onDone always
// fires exactly once — StatusOK on success, StatusTimeout/StatusFlushed on
// failure — instead of hanging forever on a dark fabric.
func (q *QP) WriteStatus(local, remote *MR, size float64, tag string, onDone func(now sim.Time, st Status)) {
	q.opposite(local, remote)
	o, live := q.track("write", onDone)
	if !live {
		return
	}
	o.post = q.eng.Schedule(q.Params.OpLatency, func() {
		o.post = nil
		q.start(o, local, remote, size, 1, tag)
	})
}

// Read posts a one-sided RDMA READ pulling size bytes from remote into
// local. The request first crosses the wire (one-way delay), then data
// flows back with the read wire penalty. onDone fires only on success; use
// ReadStatus to observe errors.
func (q *QP) Read(local, remote *MR, size float64, tag string, onDone func(now sim.Time)) {
	q.ReadStatus(local, remote, size, tag, okOnly(onDone))
}

// ReadStatus is Read with an explicit completion status (see WriteStatus).
func (q *QP) ReadStatus(local, remote *MR, size float64, tag string, onDone func(now sim.Time, st Status)) {
	q.opposite(local, remote)
	o, live := q.track("read", onDone)
	if !live {
		return
	}
	o.post = q.eng.Schedule(q.Params.OpLatency+q.Link.OneWayDelay(), func() {
		o.post = nil
		// Responder streams data back: source NIC is the remote side.
		q.start(o, remote, local, size, q.Params.ReadPenalty, tag)
	})
}

// okOnly adapts a success-only callback to the status interface.
func okOnly(onDone func(now sim.Time)) func(sim.Time, Status) {
	return func(now sim.Time, st Status) {
		if st == StatusOK && onDone != nil {
			onDone(now)
		}
	}
}

// Send posts a two-sided SEND of size bytes; onRecv fires at the receiver
// after serialization and propagation. Control-plane messages are not
// charged against bulk bandwidth. A SEND dropped on a dark link counts as
// an error completion but does not error the QP (the simulation's control
// planes carry their own retry logic).
func (q *QP) Send(size float64, onRecv func(now sim.Time)) {
	if size <= 0 {
		size = q.Params.ControlBytes
	}
	q.Posted++
	q.eng.Schedule(q.Params.OpLatency, func() {
		ok := q.Link.Send(size, func(now sim.Time) {
			q.Completed++
			onRecv(now)
		})
		if !ok {
			q.Errors++
		}
	})
}

// start creates the fluid transfer for op o's payload moving src→dst.
func (q *QP) start(o *op, src, dst *MR, size float64, wirePenalty float64, tag string) {
	f := q.sim.NewFlow(fmt.Sprintf("rdma/%s->%s", src.Name, dst.Name), wireDemand)
	src.NIC.ChargeDMA(f, src.Buf, 1, false, tag)
	q.Link.ChargeWire(f, src.NIC, wirePenalty, tag)
	dst.NIC.ChargeDMA(f, dst.Buf, 1, true, tag)
	delay := q.Link.OneWayDelay()
	o.tr = &fluid.Transfer{
		Flow:      f,
		Remaining: size,
		OnComplete: func(sim.Time) {
			o.tr = nil
			// Completion surfaces after the tail propagates. The data is
			// already placed, so a QP error during the tail does not undo
			// the op; it still completes OK.
			q.eng.Schedule(delay, func() { q.finish(o, StatusOK) })
		},
	}
	q.sim.Start(o.tr)
}

// wireDemand is effectively unbounded; link and memory resources bound ops.
var wireDemand = func() float64 {
	return 1e30 // avoid math.Inf to keep demand arithmetic finite
}()
