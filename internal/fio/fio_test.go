package fio

import (
	"math"
	"testing"

	"e2edt/internal/blockdev"
	"e2edt/internal/fabric"
	"e2edt/internal/fluid"
	"e2edt/internal/host"
	"e2edt/internal/iscsi"
	"e2edt/internal/iser"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

type rig struct {
	eng  *sim.Engine
	s    *fluid.Sim
	init *host.Host
	tgt  *host.Host
	sess *iscsi.Session
	tg   *iscsi.Target
}

func backendNUMA(name string) numa.Config {
	return numa.Config{
		Name: name, Nodes: 2, CoresPerNode: 8, CoreHz: 2.0e9,
		MemBandwidthPerNode:        22 * units.GBps,
		InterconnectBandwidth:      11.5 * units.GBps,
		RemoteAccessPenalty:        1.4,
		CoherencyWritePenalty:      8,
		CoherencySnoopBytesPerByte: 0.3,
		MemBytes:                   384 * units.GB,
	}
}

func newRig(t *testing.T, policy numa.Policy, luns, threadsPerLUN int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	s := fluid.NewSim(eng)
	hi := host.New("init", numa.MustNew(s, backendNUMA("init")))
	ht := host.New("tgt", numa.MustNew(s, backendNUMA("tgt")))
	mk := func(name string, n int) *fabric.Link {
		return fabric.Connect(s, fabric.Config{
			Name: name, Rate: units.FromGbps(56), RTT: 0.144e-3,
			MTU: 65520, HeaderBytes: 80,
		}, hi, hi.M.Node(n), ht, ht.M.Node(n))
	}
	links := []*fabric.Link{mk("ib0", 0), mk("ib1", 1)}
	cfg := iscsi.DefaultTargetConfig(policy)
	cfg.ThreadsPerLUN = threadsPerLUN
	tg := iscsi.NewTarget("tgt", ht, cfg)
	for i := 0; i < luns; i++ {
		var homes []*numa.Node
		if policy == numa.PolicyBind {
			homes = []*numa.Node{ht.M.Node(i % 2)}
		} else {
			homes = ht.M.Nodes
		}
		tg.AddLUN(i, blockdev.NewRamdisk(ht.M, "lun", 50*units.GB, homes...))
	}
	initProc := hi.NewProcess("open-iscsi", policy, nil)
	mv := iser.NewMover(
		[]iser.Portal{iser.PortalFor(links[0], ht), iser.PortalFor(links[1], ht)},
		initProc.NewThread(), tg, iser.DefaultParams())
	return &rig{eng: eng, s: s, init: hi, tgt: ht, sess: iscsi.NewSession(tg, mv), tg: tg}
}

func (r *rig) bufFactory(policy numa.Policy) BufferFactory {
	return func(lun, slot int) *numa.Buffer {
		if policy == numa.PolicyBind {
			return r.init.M.NewBuffer("fio", r.init.M.Node(lun%2))
		}
		return r.init.M.InterleavedBuffer("fio")
	}
}

func runOne(t *testing.T, policy numa.Policy, op iscsi.Op, bs int64, depth int) (Result, *rig) {
	t.Helper()
	r := newRig(t, policy, 6, depth)
	res, err := Run(r.eng, r.sess, r.bufFactory(policy), JobSpec{
		Name: "job", Op: op, BlockSize: bs, IODepth: depth, Duration: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res[0], r
}

func TestSpecValidation(t *testing.T) {
	bad := []JobSpec{
		{Name: "a", BlockSize: 0, IODepth: 1, Duration: 1},
		{Name: "b", BlockSize: units.MB, IODepth: 0, Duration: 1},
		{Name: "c", BlockSize: units.MB, IODepth: 1, Duration: 0},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %s should fail validation", spec.Name)
		}
	}
	r := newRig(t, numa.PolicyBind, 1, 4)
	if _, err := Run(r.eng, r.sess, nil, JobSpec{Name: "x", BlockSize: units.MB, IODepth: 1, Duration: 1}); err == nil {
		t.Error("nil buffer factory should fail")
	}
	if _, err := Run(r.eng, r.sess, r.bufFactory(numa.PolicyBind), bad[0]); err == nil {
		t.Error("invalid spec should fail Run")
	}
}

func TestReadBandwidthPlausible(t *testing.T) {
	res, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 4)
	g := units.ToGbps(res.Bandwidth())
	// Two FDR links: 112 Gbps ceiling. Expect high utilization.
	if g < 90 || g > 112.1 {
		t.Fatalf("NUMA-tuned iSER read = %.1f Gbps, want ≈95–112", g)
	}
	if res.Errors != 0 {
		t.Fatalf("errors: %d", res.Errors)
	}
	if res.IOPS() <= 0 || res.AvgLatency() <= 0 || res.LatencyMax < res.AvgLatency() {
		t.Fatalf("latency stats wrong: %+v", res)
	}
}

func TestNUMATuningImprovesBandwidth(t *testing.T) {
	readBind, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 4)
	readDef, _ := runOne(t, numa.PolicyDefault, iscsi.OpRead, 4*units.MB, 4)
	writeBind, _ := runOne(t, numa.PolicyBind, iscsi.OpWrite, 4*units.MB, 4)
	writeDef, _ := runOne(t, numa.PolicyDefault, iscsi.OpWrite, 4*units.MB, 4)

	readGain := readBind.Bandwidth() / readDef.Bandwidth()
	writeGain := writeBind.Bandwidth() / writeDef.Bandwidth()
	if readGain <= 1.0 {
		t.Fatalf("read gain = %.3f, binding should help", readGain)
	}
	if writeGain <= readGain {
		t.Fatalf("write gain (%.3f) should exceed read gain (%.3f): coherency cost", writeGain, readGain)
	}
	// Paper: read +7.6%, write +19% — allow generous bands on shape.
	if readGain > 1.20 {
		t.Fatalf("read gain = %.3f, implausibly large", readGain)
	}
	if writeGain < 1.05 || writeGain > 1.6 {
		t.Fatalf("write gain = %.3f, want ≈1.19", writeGain)
	}
}

func TestReadBeatsWriteWhenTuned(t *testing.T) {
	read, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 4)
	write, _ := runOne(t, numa.PolicyBind, iscsi.OpWrite, 4*units.MB, 4)
	ratio := read.Bandwidth() / write.Bandwidth()
	// Paper: read ≈7.5% better (RDMA WRITE vs RDMA READ).
	if ratio < 1.02 || ratio > 1.15 {
		t.Fatalf("read/write = %.3f, want ≈1.075", ratio)
	}
}

func TestDefaultPolicyWriteCPUInflated(t *testing.T) {
	_, rBind := runOne(t, numa.PolicyBind, iscsi.OpWrite, 4*units.MB, 4)
	bindCPU := rBind.tgt.HostCPUReport().ByCategory[host.CatIO]
	_, rDef := runOne(t, numa.PolicyDefault, iscsi.OpWrite, 4*units.MB, 4)
	defCPU := rDef.tgt.HostCPUReport().ByCategory[host.CatIO]
	ratio := defCPU / bindCPU
	if ratio < 1.8 {
		t.Fatalf("default/bind write CPU = %.2f, want ≈3 (coherency storms)", ratio)
	}
}

func TestIODepthScaling(t *testing.T) {
	d1, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 1)
	d4, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 4)
	if d4.Bandwidth() <= d1.Bandwidth() {
		t.Fatalf("depth 4 (%.1f) should beat depth 1 (%.1f)",
			units.ToGbps(d4.Bandwidth()), units.ToGbps(d1.Bandwidth()))
	}
	// Gains level off beyond the optimum (paper: 4 threads/LUN).
	d16, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 16)
	if d16.Bandwidth() > d4.Bandwidth()*1.05 {
		t.Fatalf("depth 16 (%.1f) should not scale past depth 4 (%.1f)",
			units.ToGbps(d16.Bandwidth()), units.ToGbps(d4.Bandwidth()))
	}
}

func TestBlockSizeSweepShape(t *testing.T) {
	var prev float64
	for _, bs := range []int64{256 * units.KB, units.MB, 4 * units.MB} {
		res, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, bs, 4)
		if res.Bandwidth() < prev*0.98 {
			t.Fatalf("bandwidth regressed at bs=%s: %.1f < %.1f Gbps",
				units.FormatBytes(bs), units.ToGbps(res.Bandwidth()), units.ToGbps(prev))
		}
		prev = res.Bandwidth()
	}
}

func TestMultipleJobsConcurrently(t *testing.T) {
	r := newRig(t, numa.PolicyBind, 6, 4)
	res, err := Run(r.eng, r.sess, r.bufFactory(numa.PolicyBind),
		JobSpec{Name: "r", Op: iscsi.OpRead, BlockSize: 4 * units.MB, IODepth: 2, LUNs: []int{0, 2, 4}, Duration: 3},
		JobSpec{Name: "w", Op: iscsi.OpWrite, BlockSize: 4 * units.MB, IODepth: 2, LUNs: []int{1, 3, 5}, Duration: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for _, rr := range res {
		if rr.Bandwidth() <= 0 {
			t.Fatalf("job %s moved nothing", rr.Name)
		}
	}
}

func TestErrorsCounted(t *testing.T) {
	r := newRig(t, numa.PolicyBind, 1, 4)
	res, err := Run(r.eng, r.sess, r.bufFactory(numa.PolicyBind), JobSpec{
		Name: "bad", Op: iscsi.OpRead, BlockSize: units.MB, IODepth: 2,
		LUNs: []int{7}, Duration: 1, // LUN 7 does not exist
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Errors == 0 {
		t.Fatal("expected errors for missing LUN")
	}
	if res[0].Completed != 0 {
		t.Fatal("no commands should complete")
	}
}

func TestResultString(t *testing.T) {
	res, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, units.MB, 1)
	if res.String() == "" {
		t.Fatal("empty summary")
	}
	var zero Result
	if zero.Bandwidth() != 0 || zero.IOPS() != 0 || zero.AvgLatency() != 0 {
		t.Fatal("zero result should report zeros")
	}
	_ = math.Inf
}

func TestLatencyHistogramPopulated(t *testing.T) {
	res, _ := runOne(t, numa.PolicyBind, iscsi.OpRead, 4*units.MB, 4)
	if res.Latency == nil || res.Latency.Count() == 0 {
		t.Fatal("latency histogram missing")
	}
	if uint64(res.Completed) != res.Latency.Count() {
		t.Fatalf("histogram count %d != completed %d", res.Latency.Count(), res.Completed)
	}
	p50, p99 := res.Latency.Quantile(0.5), res.Latency.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles wrong: p50=%v p99=%v", p50, p99)
	}
	if res.Latency.Max() > res.LatencyMax*1.0000001 {
		t.Fatal("histogram max exceeds tracked max")
	}
}
