// Package fio is a flexible I/O tester for the simulated SAN, mirroring
// how the paper benchmarks its iSER back end (§4.2): per-LUN thread pools
// keep a fixed queue depth of sequential block I/O outstanding for a fixed
// duration, and the harness reports aggregate bandwidth, IOPS and latency.
package fio

import (
	"fmt"
	"math"

	"e2edt/internal/iscsi"
	"e2edt/internal/metrics"
	"e2edt/internal/numa"
	"e2edt/internal/sim"
	"e2edt/internal/units"
)

// JobSpec describes one fio job.
type JobSpec struct {
	Name      string
	Op        iscsi.Op
	BlockSize int64
	// IODepth is the number of commands kept in flight per LUN (the
	// paper's "I/O threads per LUN"; 4 is their optimum).
	IODepth int
	// LUNs lists target logical units; empty means all exported LUNs.
	LUNs []int
	// Duration is how long the job issues I/O.
	Duration sim.Duration
}

// Validate reports spec errors.
func (s JobSpec) Validate() error {
	switch {
	case s.BlockSize <= 0:
		return fmt.Errorf("fio: job %s: BlockSize must be positive", s.Name)
	case s.IODepth <= 0:
		return fmt.Errorf("fio: job %s: IODepth must be positive", s.Name)
	case s.Duration <= 0:
		return fmt.Errorf("fio: job %s: Duration must be positive", s.Name)
	}
	return nil
}

// Result summarizes a completed job.
type Result struct {
	Name string
	// Bytes completed within the measurement window.
	Bytes float64
	// Elapsed is the measurement window in seconds.
	Elapsed float64
	// Completed is the number of commands finished in the window.
	Completed int64
	// Errors counts failed commands.
	Errors int64
	// LatencySum and LatencyMax aggregate per-command round-trip times.
	LatencySum float64
	LatencyMax float64
	// Latency is the full per-command latency distribution (seconds).
	Latency *metrics.Histogram
}

// Bandwidth returns bytes/second.
func (r Result) Bandwidth() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.Bytes / r.Elapsed
}

// IOPS returns completed commands per second.
func (r Result) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed
}

// AvgLatency returns the mean command latency in seconds.
func (r Result) AvgLatency() float64 {
	if r.Completed == 0 {
		return 0
	}
	return r.LatencySum / float64(r.Completed)
}

// String renders the fio-style summary line.
func (r Result) String() string {
	p99 := 0.0
	if r.Latency != nil {
		p99 = r.Latency.Quantile(0.99)
	}
	return fmt.Sprintf("%s: bw=%s iops=%.0f lat(avg/p99/max)=%.3f/%.3f/%.3f ms err=%d",
		r.Name, units.FormatRate(r.Bandwidth()), r.IOPS(),
		r.AvgLatency()*1e3, p99*1e3, r.LatencyMax*1e3, r.Errors)
}

// BufferFactory supplies the initiator-side data buffer for queue slot i of
// the given LUN, controlling front-end NUMA placement.
type BufferFactory func(lun, slot int) *numa.Buffer

// job tracks one running JobSpec.
type job struct {
	spec     JobSpec
	sess     *iscsi.Session
	mkBuf    BufferFactory
	deadline sim.Time
	eng      *sim.Engine
	res      Result
	offsets  map[int]int64
	inflight int
	done     bool
	onDrain  func()
}

// Run executes the specs concurrently on one session and returns their
// results in spec order. It drives the engine until every job has drained.
func Run(eng *sim.Engine, sess *iscsi.Session, mkBuf BufferFactory, specs ...JobSpec) ([]Result, error) {
	if mkBuf == nil {
		return nil, fmt.Errorf("fio: nil buffer factory")
	}
	jobs := make([]*job, 0, len(specs))
	pending := 0
	for _, spec := range specs {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		luns := spec.LUNs
		if len(luns) == 0 {
			for _, l := range sess.Target.LUNs() {
				luns = append(luns, l.ID)
			}
		}
		if len(luns) == 0 {
			return nil, fmt.Errorf("fio: job %s: no LUNs", spec.Name)
		}
		spec.LUNs = luns
		j := &job{
			spec:     spec,
			sess:     sess,
			mkBuf:    mkBuf,
			deadline: eng.Now() + sim.Time(spec.Duration),
			eng:      eng,
			res: Result{
				Name: spec.Name, Elapsed: float64(spec.Duration),
				Latency: metrics.NewHistogram(10e-6),
			},
			offsets: make(map[int]int64),
		}
		pending++
		j.onDrain = func() { pending-- }
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		j.start()
	}
	// Drive the simulation until all jobs drain. Background tickers can
	// keep the queue non-empty, so step with a bounded horizon.
	for pending > 0 {
		if !eng.Step() {
			return nil, fmt.Errorf("fio: engine drained with %d jobs incomplete", pending)
		}
	}
	out := make([]Result, len(jobs))
	for i, j := range jobs {
		out[i] = j.res
	}
	return out, nil
}

func (j *job) start() {
	for _, lun := range j.spec.LUNs {
		for slot := 0; slot < j.spec.IODepth; slot++ {
			j.submit(lun, j.mkBuf(lun, slot))
		}
	}
	if j.inflight == 0 {
		j.finish()
	}
}

func (j *job) submit(lun int, buf *numa.Buffer) {
	if j.eng.Now() >= j.deadline {
		return
	}
	dev := j.lunSize(lun)
	off := j.offsets[lun]
	if off+j.spec.BlockSize > dev {
		off = 0
	}
	j.offsets[lun] = off + j.spec.BlockSize
	j.inflight++
	cmd := &iscsi.Command{
		Op:     j.spec.Op,
		LUN:    lun,
		Offset: off,
		Length: j.spec.BlockSize,
		Buffer: buf,
		Tag:    j.spec.Name,
	}
	cmd.OnComplete = func(now sim.Time, err error) {
		j.inflight--
		if err != nil {
			// A failing slot is retired (fio aborts the file on error);
			// resubmitting would spin at the same virtual instant.
			j.res.Errors++
		} else {
			if now <= j.deadline {
				j.res.Bytes += float64(cmd.Length)
				j.res.Completed++
				lat := float64(now - cmd.Issued)
				j.res.LatencySum += lat
				j.res.LatencyMax = math.Max(j.res.LatencyMax, lat)
				j.res.Latency.Observe(lat)
			}
			j.submit(lun, buf)
		}
		if j.inflight == 0 {
			j.finish()
		}
	}
	j.sess.Submit(cmd)
}

func (j *job) finish() {
	if !j.done {
		j.done = true
		j.onDrain()
	}
}

func (j *job) lunSize(id int) int64 {
	for _, l := range j.sess.Target.LUNs() {
		if l.ID == id {
			return l.Dev.Size()
		}
	}
	return 0
}
