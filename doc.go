// Package e2edt is a complete, simulation-backed Go reproduction of
// "Design and Performance Evaluation of NUMA-Aware RDMA-Based End-to-End
// Data Transfer Systems" (Ren, Li, Yu, Jin, Robertazzi — SC '13).
//
// The repository root holds the module documentation and the benchmark
// harness (bench_test.go), which regenerates every table and figure in the
// paper's evaluation as a Go benchmark. The library lives under internal/:
// see README.md for the architecture, DESIGN.md for the paper-to-package
// substitution map, and EXPERIMENTS.md for paper-versus-measured results.
package e2edt
