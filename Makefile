# Developer entry points. `make verify` is what CI runs.

GO ?= go

.PHONY: build test race vet fmt verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt vet build race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
