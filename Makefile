# Developer entry points. `make verify` is what CI runs.

GO ?= go

.PHONY: build test race vet fmt lint verify bench bench-smoke failover-smoke placer-smoke cluster-smoke chaos-smoke gray-smoke objsim-smoke bench-pr6

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck when available (CI installs it); plain vet otherwise so the
# target works on machines without network access.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt vet build race

bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR8.json

# One iteration of every benchmark in the tree (keeps benchmarks from
# bit-rotting), then the benchreport smoke gate: asserts the committed
# BENCH_PR8.json carries the 100k-flow churn row at ≥10×, re-measures that
# point, and replays S1/S2/S5 under the legacy knobs checking the trace
# SHA-256s match bit for bit (CI runs this).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
	$(GO) run ./cmd/benchreport -smoke -out BENCH_PR8.json

# Two seeded rail-failover runs through the CLI: a permanent rail kill
# plus silent corruption, with checksums on. Exercises migration,
# rebalance and the integrity plane end to end (CI runs this).
failover-smoke:
	$(GO) run ./cmd/xfersched -jobs 8 -seed 3 -gridftp 0 -kill-rail roce1@2 -corrupt 2 -checksum
	$(GO) run ./cmd/xfersched -jobs 10 -seed 11 -gridftp 0 -kill-rail roce2@1.5 -corrupt 3 -corruptseed 5 -checksum

# Adaptive-placement gate: the placer and scheduler test suites under the
# race detector, then the full S4 experiment, whose acceptance checks
# (auto ≥ 95% of bind, beats every static policy post-kill, bit-identical
# replay, bounded migrations) panic on violation (CI runs this).
placer-smoke:
	$(GO) test -race ./internal/placer ./internal/xfersched
	$(GO) run ./cmd/e2ebench -run S4

# Cluster determinism gate: 100 hosts, 500 tenants, 5% control-plane drop,
# fixed seed, run twice inside the CLI — exits non-zero unless both traces
# hash bit-identically (CI runs this).
cluster-smoke:
	$(GO) test -race ./internal/cluster ./internal/fabric
	$(GO) run ./cmd/xfersched -cluster -hosts 100 -ctenants 500 -drop 5 -seed 7 -replay-check

# Cluster failure-domain gate: the chaos determinism suites under the race
# detector, then a 100-host run through the CLI with a host crash-stop, a
# leader-controller kill and a control-plane partition — the process exits
# non-zero unless delivery is exactly-once, no shard stays degraded, and a
# second same-seed run hashes bit-identically (CI runs this).
chaos-smoke:
	$(GO) test -race -run 'Chaos|Lease|Crash|Partition|GivesUp|LeaderKill' ./internal/cluster ./internal/faults
	$(GO) run ./cmd/xfersched -cluster -hosts 100 -shards 8 -ctenants 400 -cjobs 1200 -drop 2 -seed 7 \
		-kill-host 7@8+8 -kill-ctrl 0@15 -partition 5,6,7@20+6 -replay-check

# Gray-failure gate: the gray/hedge/shed suites under the race detector,
# then the full S7 experiment — its acceptance checks (detection fires on a
# sagging rail, hedged goodput ≥90% of healthy while the no-mitigation
# ablation collapses ≤60%, bounded detection latency, bit-identical replay)
# panic on violation — and finally two CLI drives: a single-pair sag with
# hedging (exits non-zero unless every job delivers) and a cluster host
# limp under the shed valve with the replay-hash check (CI runs this).
gray-smoke:
	$(GO) test -race -run 'Gray|Hedge|Suspect|Shed|Limp|Window|Validate' \
		./internal/faults ./internal/railmgr ./internal/rftp \
		./internal/metrics ./internal/xfersched ./internal/cluster
	$(GO) run ./cmd/e2ebench -run S7
	$(GO) run ./cmd/xfersched -jobs 10 -seed 3 -gridftp 0 -gray roce1@2:0.7 -hedge
	$(GO) run ./cmd/xfersched -cluster -hosts 16 -shards 2 -ctenants 32 -cjobs 120 \
		-gray 3@8+6:0.95 -shed -replay-check

# Object-gateway gate: the objstore suites (key/multipart parsing, zero-
# length objects, coalescing windows, 20-seed determinism) plus the batch
# and tiny-job suites under the race detector, then objsim drives both
# modes with the replay-hash check — per-object worst case, coalesced, and
# the sharded cluster under lossy control (CI runs this).
objsim-smoke:
	$(GO) test -race ./internal/objstore
	$(GO) test -race -run 'Batch|TinyJobs|ZeroLength|Grace' ./internal/rftp ./internal/xfersched
	$(GO) run ./cmd/objsim -coalesce 1 -objects 256 -replay-check
	$(GO) run ./cmd/objsim -coalesce 64 -replay-check
	$(GO) run ./cmd/objsim -cluster -objects 512 -coalesce 64 -replay-check

# Full S5 scaling sweep (100/300/1000 hosts, each run twice) → BENCH_PR6.json.
# Takes several minutes; not part of CI.
bench-pr6:
	$(GO) run ./cmd/clusterbench -o BENCH_PR6.json
