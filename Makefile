# Developer entry points. `make verify` is what CI runs.

GO ?= go

.PHONY: build test race vet fmt verify bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

verify: fmt vet build race

bench:
	$(GO) run ./cmd/benchreport -out BENCH_PR3.json

# One iteration of every benchmark in the tree — a fast compile-and-run
# smoke check that keeps benchmarks from bit-rotting (CI runs this).
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
